#include "tcp/model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

path_metrics clean_path(double rtt_ms = 40.0, double loss = 1e-6,
                        double bottleneck_mbps = 800.0) {
  path_metrics m;
  m.rtt = millis{rtt_ms};
  m.base_rtt = millis{rtt_ms};
  m.loss = loss;
  m.bottleneck = mbps{bottleneck_mbps};
  return m;
}

TEST(MathisTest, KnownValue) {
  // MSS=1460B, RTT=100ms, p=0.01 -> 1.22*...: 11680 bits /(0.1*sqrt(2/300))
  const mbps t = mathis_throughput(millis{100.0}, 0.01, 1460);
  // sqrt(2*0.01/3) = 0.08165; 11680/(0.1*0.08165) = 1.4305e6 bps.
  EXPECT_NEAR(t.value, 1.43, 0.01);
}

TEST(MathisTest, MonotoneInLossAndRtt) {
  const mbps low_loss = mathis_throughput(millis{50.0}, 1e-4, 1460);
  const mbps high_loss = mathis_throughput(millis{50.0}, 1e-2, 1460);
  EXPECT_GT(low_loss.value, high_loss.value);
  const mbps short_rtt = mathis_throughput(millis{20.0}, 1e-3, 1460);
  const mbps long_rtt = mathis_throughput(millis{200.0}, 1e-3, 1460);
  EXPECT_GT(short_rtt.value, long_rtt.value);
}

TEST(PftkTest, ReducesToMathisForSmallLoss) {
  const mbps m = mathis_throughput(millis{80.0}, 1e-5, 1460);
  const mbps p = pftk_throughput(millis{80.0}, 1e-5, 1460, 0.3);
  EXPECT_NEAR(p.value / m.value, 1.0, 0.05);
}

TEST(PftkTest, TimeoutTermBitesAtHighLoss) {
  const mbps m = mathis_throughput(millis{80.0}, 0.2, 1460);
  const mbps p = pftk_throughput(millis{80.0}, 0.2, 1460, 0.3);
  EXPECT_LT(p.value, m.value * 0.5);
}

TEST(PftkTest, ArgumentValidation) {
  EXPECT_THROW(pftk_throughput(millis{0.0}, 0.01, 1460, 0.3),
               invalid_argument_error);
  EXPECT_THROW(pftk_throughput(millis{50.0}, 0.0, 1460, 0.3),
               invalid_argument_error);
  EXPECT_THROW(pftk_throughput(millis{50.0}, 1.0, 1460, 0.3),
               invalid_argument_error);
  EXPECT_THROW(mathis_throughput(millis{-1.0}, 0.01, 1460),
               invalid_argument_error);
}

TEST(FlowTest, CleanPathIsAvailLimited) {
  rng r(1);
  tcp_config cfg;
  const flow_result f = run_speedtest_flow(clean_path(), cfg, mbps{1000.0}, r);
  // ~800 Mbps avail times efficiency, never exceeding the cap.
  EXPECT_GT(f.goodput.value, 600.0);
  EXPECT_LE(f.goodput.value, 1000.0);
  EXPECT_FALSE(f.loss_limited);
  EXPECT_LT(f.reported_loss, 0.02);
}

TEST(FlowTest, RateCapBinds) {
  rng r(2);
  tcp_config cfg;
  const flow_result f = run_speedtest_flow(clean_path(30.0, 1e-6, 5000.0),
                                           cfg, mbps{100.0}, r);
  EXPECT_LE(f.goodput.value, 101.0);
  EXPECT_GT(f.goodput.value, 80.0);
}

TEST(FlowTest, HighLossCollapsesThroughput) {
  rng r(3);
  tcp_config cfg;
  const flow_result clean =
      run_speedtest_flow(clean_path(100.0, 1e-6, 800.0), cfg, mbps{1000.0}, r);
  const flow_result lossy =
      run_speedtest_flow(clean_path(100.0, 0.05, 800.0), cfg, mbps{1000.0}, r);
  EXPECT_LT(lossy.goodput.value, clean.goodput.value * 0.25);
  EXPECT_TRUE(lossy.loss_limited);
  EXPECT_GE(lossy.reported_loss, 0.05);
}

TEST(FlowTest, MoreConnectionsRaiseLossBound) {
  rng r1(4), r2(4);
  tcp_config one;
  one.connections = 1;
  tcp_config many;
  many.connections = 8;
  const path_metrics path = clean_path(120.0, 0.005, 900.0);
  const flow_result f1 = run_speedtest_flow(path, one, mbps{1000.0}, r1);
  const flow_result f8 = run_speedtest_flow(path, many, mbps{1000.0}, r2);
  EXPECT_GT(f8.goodput.value, f1.goodput.value * 3.0);
}

TEST(FlowTest, VolumeMatchesGoodputAndDuration) {
  rng r(5);
  tcp_config cfg;
  cfg.duration_seconds = 10.0;
  const flow_result f = run_speedtest_flow(clean_path(), cfg, mbps{1000.0}, r);
  EXPECT_NEAR(f.volume.value, f.goodput.bytes_per_second() * 10.0 / 1e6,
              1e-6);
}

TEST(FlowTest, NeverReportsZero) {
  rng r(6);
  tcp_config cfg;
  path_metrics dead = clean_path(300.0, 0.55, 0.01);
  const flow_result f = run_speedtest_flow(dead, cfg, mbps{1000.0}, r);
  EXPECT_GT(f.goodput.value, 0.0);
  EXPECT_LT(f.goodput.value, 5.0);
  EXPECT_GT(f.reported_loss, 0.3);
}

TEST(FlowTest, ReportedLossIncludesRampBurst) {
  rng r(7);
  tcp_config cfg;
  // Very clean path: reported loss still nonzero from self-induced losses.
  const flow_result f =
      run_speedtest_flow(clean_path(40.0, 1e-6, 500.0), cfg, mbps{1000.0}, r);
  EXPECT_GT(f.reported_loss, 1e-5);
}

TEST(FlowTest, ArgumentValidation) {
  rng r(8);
  tcp_config zero_conns;
  zero_conns.connections = 0;
  EXPECT_THROW(run_speedtest_flow(clean_path(), zero_conns, mbps{100.0}, r),
               invalid_argument_error);
  tcp_config cfg;
  EXPECT_THROW(run_speedtest_flow(clean_path(), cfg, mbps{0.0}, r),
               invalid_argument_error);
}

TEST(LatencyProbeTest, AtLeastPathRtt) {
  rng r(9);
  const path_metrics m = clean_path(37.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_GE(run_latency_probe(m, 10, r).value, 37.0);
  }
}

TEST(LatencyProbeTest, MoreProbesTightenMinimum) {
  rng r1(10), r2(10);
  const path_metrics m = clean_path(30.0);
  double few = 0.0, many = 0.0;
  for (int i = 0; i < 200; ++i) {
    few += run_latency_probe(m, 1, r1).value;
    many += run_latency_probe(m, 20, r2).value;
  }
  EXPECT_LT(many, few);
}

TEST(LatencyProbeTest, ZeroProbesRejected) {
  rng r(11);
  EXPECT_THROW(run_latency_probe(clean_path(), 0, r), invalid_argument_error);
}

// Property sweep: goodput never exceeds any cap for random conditions.
class FlowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowPropertyTest, CapsAlwaysRespected) {
  rng r(GetParam());
  for (int i = 0; i < 50; ++i) {
    path_metrics m;
    m.rtt = millis{r.uniform(5.0, 300.0)};
    m.loss = r.uniform(1e-6, 0.3);
    m.bottleneck = mbps{r.uniform(0.5, 2000.0)};
    const mbps cap{r.uniform(10.0, 1000.0)};
    tcp_config cfg;
    cfg.connections = 1 + static_cast<unsigned>(r.uniform_int(0, 7));
    const flow_result f = run_speedtest_flow(m, cfg, cap, r);
    // Efficiency jitter can exceed 1 slightly; allow 10% headroom.
    EXPECT_LE(f.goodput.value,
              1.1 * std::min(cap.value, m.bottleneck.value) + 0.06);
    EXPECT_GE(f.reported_loss, 0.0);
    EXPECT_LE(f.reported_loss, 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace clasp

// Shared fixtures for the test suites.
//
// Full-size internets take ~100 ms to generate; tests that only need
// structure use a small config, and each test binary caches one instance
// per config through the leaky-singleton pattern (gtest runs suites in one
// process).
#pragma once

#include "clasp/platform.hpp"
#include "netsim/generator.hpp"
#include "netsim/network.hpp"
#include "netsim/routing.hpp"
#include "speedtest/registry.hpp"

namespace clasp::testing {

// A reduced Internet that keeps every structural feature (named ASes,
// carriers, peerings, vantage points) at ~1/8 scale.
inline internet_config small_internet_config() {
  internet_config cfg;
  cfg.seed = 1234;
  cfg.regional_isp_count = 250;
  cfg.hosting_count = 150;
  cfg.business_count = 350;
  cfg.education_count = 60;
  cfg.large_isp_count = 20;
  cfg.vantage_point_count = 220;
  return cfg;
}

inline server_deploy_config small_server_config() {
  server_deploy_config cfg;
  cfg.us_server_target = 260;
  cfg.global_server_target = 1400;
  return cfg;
}

// Cached small internet (per test binary).
inline internet& small_internet() {
  static internet* net = new internet(generate_internet(small_internet_config()));
  return *net;
}

// A fully wired small platform (substrate + servers + cloud), cached.
inline clasp_platform& small_platform() {
  static clasp_platform* platform = [] {
    platform_config cfg;
    cfg.internet = small_internet_config();
    cfg.servers = small_server_config();
    // Budgets scaled down with the fleet.
    cfg.topology_budgets = {{"us-west1", 40}, {"us-west2", 12},
                            {"us-west4", 18}, {"us-east1", 60},
                            {"us-east4", 15}, {"us-central1", 20}};
    return new clasp_platform(cfg);
  }();
  return *platform;
}

// Ensure the shared fixture has a short us-east1 topology campaign in its
// store (ctest runs every test in its own process, so data produced by
// other tests is not implicitly available).
inline void ensure_east1_campaign(clasp_platform& platform) {
  if (!platform.download_series("topology", "us-east1").series.empty()) {
    return;
  }
  const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                          hour_stamp::from_civil({2020, 5, 4}, 0)};
  platform.start_topology_campaign("us-east1", window).run();
}

}  // namespace clasp::testing

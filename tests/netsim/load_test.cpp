#include "netsim/load.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

load_profile flat_profile(double base, double amp, double noise = 0.0) {
  load_profile p;
  p.fwd = {base, amp, noise, 0.0, episode_kind::none, 0, 0, 0};
  p.rev = {base, amp, noise, 0.0, episode_kind::none, 0, 0, 0};
  return p;
}

TEST(DiurnalShapeTest, TroughAndPeak) {
  EXPECT_DOUBLE_EQ(link_load_model::diurnal_shape(4), 0.0);
  EXPECT_DOUBLE_EQ(link_load_model::diurnal_shape(20), 1.0);
  for (unsigned h = 0; h < 24; ++h) {
    EXPECT_GE(link_load_model::diurnal_shape(h), 0.0);
    EXPECT_LE(link_load_model::diurnal_shape(h), 1.0);
  }
  // Evening (FCC peak window) above midday.
  EXPECT_GT(link_load_model::diurnal_shape(21),
            link_load_model::diurnal_shape(12));
}

TEST(LoadModelTest, DeterministicAcrossInstances) {
  link_load_model m1(77), m2(77);
  const auto id1 = m1.add_profile(flat_profile(0.3, 0.2, 0.1));
  const auto id2 = m2.add_profile(flat_profile(0.3, 0.2, 0.1));
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 15}, 20);
  EXPECT_DOUBLE_EQ(m1.utilization(id1, link_index{5}, link_dir::a_to_b, t),
                   m2.utilization(id2, link_index{5}, link_dir::a_to_b, t));
}

TEST(LoadModelTest, SeedChangesNoise) {
  link_load_model m1(1), m2(2);
  const auto id1 = m1.add_profile(flat_profile(0.3, 0.2, 0.1));
  const auto id2 = m2.add_profile(flat_profile(0.3, 0.2, 0.1));
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 15}, 20);
  EXPECT_NE(m1.utilization(id1, link_index{5}, link_dir::a_to_b, t),
            m2.utilization(id2, link_index{5}, link_dir::a_to_b, t));
}

TEST(LoadModelTest, NoiselessUtilizationFollowsDiurnal) {
  link_load_model m(1);
  load_profile p = flat_profile(0.3, 0.2);
  p.tz = timezone_offset{0};
  const auto id = m.add_profile(p);
  // Trough (04:00 local): base only.
  const hour_stamp trough = hour_stamp::from_civil({2020, 6, 15}, 4);
  EXPECT_DOUBLE_EQ(m.utilization(id, link_index{0}, link_dir::a_to_b, trough),
                   0.3);
  // Peak (20:00 local): base + amp.
  const hour_stamp peak = hour_stamp::from_civil({2020, 6, 15}, 20);
  EXPECT_DOUBLE_EQ(m.utilization(id, link_index{0}, link_dir::a_to_b, peak),
                   0.5);
}

TEST(LoadModelTest, TimezoneShiftsDiurnalPhase) {
  link_load_model m(1);
  load_profile p = flat_profile(0.2, 0.3);
  p.tz = timezone_offset{-8};  // Pacific
  const auto id = m.add_profile(p);
  // 04:00 UTC = 20:00 local previous day -> peak.
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 15}, 4);
  EXPECT_DOUBLE_EQ(m.utilization(id, link_index{0}, link_dir::a_to_b, t), 0.5);
}

TEST(LoadModelTest, DirectionsAreIndependent) {
  link_load_model m(1);
  load_profile p;
  p.fwd = {0.1, 0.0, 0.0, 0.0, episode_kind::none, 0, 0, 0};
  p.rev = {0.7, 0.0, 0.0, 0.0, episode_kind::none, 0, 0, 0};
  const auto id = m.add_profile(p);
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 15}, 4);
  EXPECT_DOUBLE_EQ(m.utilization(id, link_index{0}, link_dir::a_to_b, t), 0.1);
  EXPECT_DOUBLE_EQ(m.utilization(id, link_index{0}, link_dir::b_to_a, t), 0.7);
}

TEST(LoadModelTest, WeekendBoostAppliesOnSaturday) {
  link_load_model m(1);
  load_profile p = flat_profile(0.2, 0.4);
  p.fwd.weekend_boost = 0.5;
  const auto id = m.add_profile(p);
  // 2020-06-13 was a Saturday; 2020-06-15 a Monday. Peak hour.
  const double sat = m.utilization(id, link_index{0}, link_dir::a_to_b,
                                   hour_stamp::from_civil({2020, 6, 13}, 20));
  const double mon = m.utilization(id, link_index{0}, link_dir::a_to_b,
                                   hour_stamp::from_civil({2020, 6, 15}, 20));
  EXPECT_DOUBLE_EQ(mon, 0.6);
  EXPECT_DOUBLE_EQ(sat, 0.2 + 0.4 * 1.5);
}

TEST(LoadModelTest, EpisodesOnlyInWindow) {
  link_load_model m(1);
  load_profile p = flat_profile(0.2, 0.0);
  p.rev.episodes = episode_kind::evening_peak;
  p.rev.episode_prob = 1.0;  // every day
  p.rev.episode_severity = 0.8;
  const auto id = m.add_profile(p);
  for (unsigned h = 0; h < 24; ++h) {
    const hour_stamp t = hour_stamp::from_civil({2020, 6, 15}, h);
    const bool active = m.episode_active(id, link_index{3}, link_dir::b_to_a, t);
    EXPECT_EQ(active, h >= 18 && h <= 23) << "hour " << h;
    // The non-episode direction never fires.
    EXPECT_FALSE(m.episode_active(id, link_index{3}, link_dir::a_to_b, t));
  }
}

TEST(LoadModelTest, DaytimeAndAllDayWindows) {
  link_load_model m(1);
  load_profile day = flat_profile(0.2, 0.0);
  day.rev.episodes = episode_kind::daytime;
  day.rev.episode_prob = 1.0;
  day.rev.episode_severity = 0.5;
  load_profile all = flat_profile(0.2, 0.0);
  all.rev.episodes = episode_kind::all_day;
  all.rev.episode_prob = 1.0;
  all.rev.episode_severity = 0.5;
  const auto day_id = m.add_profile(day);
  const auto all_id = m.add_profile(all);
  EXPECT_TRUE(m.episode_active(day_id, link_index{0}, link_dir::b_to_a,
                               hour_stamp::from_civil({2020, 6, 15}, 12)));
  EXPECT_FALSE(m.episode_active(day_id, link_index{0}, link_dir::b_to_a,
                                hour_stamp::from_civil({2020, 6, 15}, 20)));
  EXPECT_TRUE(m.episode_active(all_id, link_index{0}, link_dir::b_to_a,
                               hour_stamp::from_civil({2020, 6, 15}, 19)));
  EXPECT_FALSE(m.episode_active(all_id, link_index{0}, link_dir::b_to_a,
                                hour_stamp::from_civil({2020, 6, 15}, 3)));
}

TEST(LoadModelTest, EpisodeProbabilityRoughlyHonored) {
  link_load_model m(9);
  load_profile p = flat_profile(0.2, 0.0);
  p.rev.episodes = episode_kind::evening_peak;
  p.rev.episode_prob = 0.3;
  p.rev.episode_severity = 0.5;
  const auto id = m.add_profile(p);
  int episode_days = 0;
  const int days = 400;
  for (int d = 0; d < days; ++d) {
    const hour_stamp t = hour_stamp::from_civil({2020, 1, 1}, 20) + d * 24;
    if (m.episode_active(id, link_index{1}, link_dir::b_to_a, t)) {
      ++episode_days;
    }
  }
  EXPECT_NEAR(static_cast<double>(episode_days) / days, 0.3, 0.07);
}

TEST(ConditionTest, CleanLinkHasHeadroomAndNoLoss) {
  link_load_model m(1);
  const auto id = m.add_profile(flat_profile(0.3, 0.0));
  const link_condition c =
      m.condition(id, link_index{0}, link_dir::a_to_b,
                  hour_stamp::from_civil({2020, 6, 15}, 4),
                  mbps::from_gbps(1.0), link_kind::host_access);
  EXPECT_NEAR(c.available.value, 700.0, 1e-9);
  EXPECT_LT(c.loss_rate, 1e-4);
  EXPECT_DOUBLE_EQ(c.queue_delay.value, 0.0);
}

TEST(ConditionTest, OverloadCausesLossAndQueueing) {
  link_load_model m(1);
  const auto id = m.add_profile(flat_profile(1.1, 0.0));
  const link_condition c =
      m.condition(id, link_index{0}, link_dir::a_to_b,
                  hour_stamp::from_civil({2020, 6, 15}, 4),
                  mbps::from_gbps(1.0), link_kind::metro_agg);
  EXPECT_GT(c.loss_rate, 0.02);
  EXPECT_GT(c.queue_delay.value, 5.0);
  // Overloaded links still yield a small elastic share, never zero.
  EXPECT_GT(c.available.value, 0.0);
  EXPECT_LT(c.available.value, 50.0);
}

TEST(ConditionTest, LossMonotoneInUtilization) {
  link_load_model m(1);
  double prev_loss = -1.0;
  for (double base : {0.5, 0.92, 1.0, 1.1, 1.3}) {
    const auto id = m.add_profile(flat_profile(base, 0.0));
    const link_condition c =
        m.condition(id, link_index{0}, link_dir::a_to_b,
                    hour_stamp::from_civil({2020, 6, 15}, 4), mbps{1000.0},
                    link_kind::interdomain);
    EXPECT_GT(c.loss_rate, prev_loss);
    prev_loss = c.loss_rate;
  }
}

TEST(ConditionTest, PersistentLossFloor) {
  link_load_model m(1);
  load_profile p = flat_profile(0.2, 0.0);
  p.fwd.persistent_loss = 0.02;
  const auto id = m.add_profile(p);
  const link_condition c =
      m.condition(id, link_index{0}, link_dir::a_to_b,
                  hour_stamp::from_civil({2020, 6, 15}, 4), mbps{1000.0},
                  link_kind::interdomain);
  EXPECT_GE(c.loss_rate, 0.02);
}

TEST(ConditionTest, QueueDelayBoundedByKind) {
  for (const link_kind kind :
       {link_kind::host_access, link_kind::metro_agg, link_kind::backbone,
        link_kind::interdomain, link_kind::cloud_wan}) {
    link_load_model m(1);
    const auto id = m.add_profile(flat_profile(2.0, 0.0));
    const link_condition c =
        m.condition(id, link_index{0}, link_dir::a_to_b,
                    hour_stamp::from_civil({2020, 6, 15}, 4), mbps{1000.0},
                    kind);
    EXPECT_LE(c.queue_delay.value, max_queue_delay(kind).value + 1e-9);
    EXPECT_GT(c.queue_delay.value, 0.0);
  }
  EXPECT_GT(max_queue_delay(link_kind::metro_agg).value,
            max_queue_delay(link_kind::cloud_wan).value);
}

TEST(LoadModelTest, BadProfileIdThrows) {
  link_load_model m(1);
  EXPECT_THROW(m.utilization(0, link_index{0}, link_dir::a_to_b,
                             hour_stamp{0}),
               not_found_error);
}

}  // namespace
}  // namespace clasp

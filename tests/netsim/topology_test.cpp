#include "netsim/topology.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  TopologyTest() : geo_(geo_database::builtin()), topo_(&geo_) {
    a_ = topo_.add_as(asn{100}, "NetA", as_role::access_isp);
    b_ = topo_.add_as(asn{200}, "NetB", as_role::transit);
    const city_id la = geo_.city_by_name("Los Angeles, CA").id;
    const city_id ny = geo_.city_by_name("New York, NY").id;
    ra_ = topo_.add_router(a_, la, ipv4_addr::parse("10.0.0.1"));
    rb_ = topo_.add_router(b_, la, ipv4_addr::parse("10.1.0.1"));
    rb2_ = topo_.add_router(b_, ny, ipv4_addr::parse("10.1.0.2"));
    link_ = topo_.add_link(link_kind::interdomain, ra_, rb_,
                           ipv4_addr::parse("10.9.0.0"),
                           ipv4_addr::parse("10.9.0.1"),
                           mbps::from_gbps(10.0), millis{1.0});
  }

  geo_database geo_;
  topology topo_;
  as_index a_, b_;
  router_index ra_, rb_, rb2_;
  link_index link_;
};

TEST_F(TopologyTest, BasicCounts) {
  EXPECT_EQ(topo_.as_count(), 2u);
  EXPECT_EQ(topo_.router_count(), 3u);
  EXPECT_EQ(topo_.link_count(), 1u);
}

TEST_F(TopologyTest, AsLookup) {
  EXPECT_EQ(topo_.as_at(a_).name, "NetA");
  EXPECT_EQ(topo_.find_as(asn{200}), b_);
  EXPECT_FALSE(topo_.find_as(asn{999}).has_value());
}

TEST_F(TopologyTest, DuplicateAsnRejected) {
  EXPECT_THROW(topo_.add_as(asn{100}, "Dup", as_role::hosting),
               invalid_argument_error);
}

TEST_F(TopologyTest, DuplicateRouterCityRejected) {
  const city_id la = geo_.city_by_name("Los Angeles, CA").id;
  EXPECT_THROW(topo_.add_router(a_, la, ipv4_addr::parse("10.0.0.9")),
               invalid_argument_error);
}

TEST_F(TopologyTest, SelfLinkRejected) {
  EXPECT_THROW(
      topo_.add_link(link_kind::backbone, ra_, ra_,
                     ipv4_addr::parse("10.9.1.0"), ipv4_addr::parse("10.9.1.1"),
                     mbps{1.0}, millis{1.0}),
      invalid_argument_error);
}

TEST_F(TopologyTest, RouterOfCity) {
  const city_id la = geo_.city_by_name("Los Angeles, CA").id;
  const city_id chi = geo_.city_by_name("Chicago, IL").id;
  EXPECT_EQ(topo_.router_of(a_, la), ra_);
  EXPECT_FALSE(topo_.router_of(a_, chi).has_value());
  EXPECT_EQ(topo_.routers_of(b_).size(), 2u);
}

TEST_F(TopologyTest, InterfaceResolution) {
  EXPECT_EQ(topo_.router_of_interface(ipv4_addr::parse("10.9.0.0")), ra_);
  EXPECT_EQ(topo_.router_of_interface(ipv4_addr::parse("10.9.0.1")), rb_);
  EXPECT_EQ(topo_.router_of_interface(ipv4_addr::parse("10.0.0.1")), ra_);
  EXPECT_FALSE(
      topo_.router_of_interface(ipv4_addr::parse("99.9.9.9")).has_value());
}

TEST_F(TopologyTest, InterfacesOfRouterIncludeLoopbackAndLinks) {
  const auto ifaces = topo_.interfaces_of(ra_);
  EXPECT_EQ(ifaces.size(), 2u);  // loopback + link side
}

TEST_F(TopologyTest, InterfaceOnAndNeighbor) {
  EXPECT_EQ(topo_.interface_on(ra_, link_), ipv4_addr::parse("10.9.0.0"));
  EXPECT_EQ(topo_.interface_on(rb_, link_), ipv4_addr::parse("10.9.0.1"));
  EXPECT_EQ(topo_.neighbor_on(ra_, link_), rb_);
  EXPECT_THROW(topo_.interface_on(rb2_, link_), invalid_argument_error);
}

TEST_F(TopologyTest, InterdomainQueries) {
  EXPECT_EQ(topo_.interdomain_links_between(a_, b_).size(), 1u);
  EXPECT_EQ(topo_.interdomain_links_between(b_, a_).size(), 1u);
  EXPECT_EQ(topo_.interdomain_links_of(a_).size(), 1u);
}

TEST_F(TopologyTest, HostsAttach) {
  const city_id la = geo_.city_by_name("Los Angeles, CA").id;
  const host_index h = topo_.add_host(a_, la, ipv4_addr::parse("10.0.4.4"),
                                      ra_, mbps::from_gbps(1.0));
  const host_info& info = topo_.host_at(h);
  EXPECT_EQ(info.owner, a_);
  EXPECT_EQ(info.attach, ra_);
  EXPECT_EQ(topo_.link_at(info.access).kind, link_kind::host_access);
  EXPECT_EQ(topo_.link_of_interface(ipv4_addr::parse("10.0.4.4")),
            info.access);
}

TEST_F(TopologyTest, PrefixAnnouncementsBuildTable) {
  const city_id la = geo_.city_by_name("Los Angeles, CA").id;
  topo_.announce_prefix(a_, ipv4_prefix::parse("10.0.0.0/16"), la);
  topo_.announce_prefix(b_, ipv4_prefix::parse("10.1.0.0/16"), la);
  const prefix2as_table table = topo_.build_prefix2as();
  EXPECT_EQ(table.lookup(ipv4_addr::parse("10.0.5.5"))->value, 100u);
  EXPECT_EQ(table.lookup(ipv4_addr::parse("10.1.5.5"))->value, 200u);
}

TEST_F(TopologyTest, PrimaryTransit) {
  topo_.set_primary_transit(a_, b_);
  EXPECT_EQ(topo_.as_at(a_).primary_transit, b_);
  EXPECT_THROW(topo_.set_primary_transit(a_, a_), invalid_argument_error);
}

TEST_F(TopologyTest, BadIndicesThrow) {
  EXPECT_THROW(topo_.as_at(as_index{99}), not_found_error);
  EXPECT_THROW(topo_.router_at(router_index{99}), not_found_error);
  EXPECT_THROW(topo_.link_at(link_index{99}), not_found_error);
  EXPECT_THROW(topo_.host_at(host_index{99}), not_found_error);
}

TEST(TopologyCtorTest, NullGeoRejected) {
  EXPECT_THROW(topology(nullptr), invalid_argument_error);
}

}  // namespace
}  // namespace clasp

#include "netsim/routing.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest() : net_(small_internet()), planner_(&net_) {
    region_city_ = net_.geo->city_by_name("Moncks Corner, SC").id;
    const auto region_router = net_.topo->router_of(net_.cloud, region_city_);
    vm_ = endpoint{net_.cloud, region_city_,
                   net_.topo->router_at(*region_router).loopback,
                   std::nullopt};
  }

  // A vantage point whose AS does not peer directly (transit path).
  endpoint transit_vp() const {
    for (const host_index h : net_.vantage_points) {
      const host_info& info = net_.topo->host_at(h);
      if (!net_.topo->as_at(info.owner).peers_with_cloud) {
        return planner_.endpoint_of_host(h);
      }
    }
    throw state_error("no transit-only VP in fixture");
  }

  endpoint peering_vp() const {
    for (const host_index h : net_.vantage_points) {
      const host_info& info = net_.topo->host_at(h);
      if (net_.topo->as_at(info.owner).peers_with_cloud) {
        return planner_.endpoint_of_host(h);
      }
    }
    throw state_error("no peering VP in fixture");
  }

  // Validate structural invariants of any path.
  void check_path(const route_path& p) const {
    ASSERT_FALSE(p.routers.empty());
    ASSERT_EQ(p.transit_hops.size(), p.routers.size() - 1);
    for (std::size_t i = 0; i + 1 < p.routers.size(); ++i) {
      const link_info& l = net_.topo->link_at(p.transit_hops[i].link);
      const router_index from =
          (p.transit_hops[i].dir == link_dir::a_to_b) ? l.a : l.b;
      const router_index to =
          (p.transit_hops[i].dir == link_dir::a_to_b) ? l.b : l.a;
      EXPECT_EQ(from, p.routers[i]) << "hop " << i << " disconnected";
      EXPECT_EQ(to, p.routers[i + 1]) << "hop " << i << " disconnected";
    }
  }

  internet& net_;
  route_planner planner_;
  city_id region_city_;
  endpoint vm_;
};

TEST_F(RoutingTest, NullNetRejected) {
  EXPECT_THROW(route_planner(nullptr), invalid_argument_error);
}

TEST_F(RoutingTest, ToCloudPremiumIsConnected) {
  const route_path p =
      planner_.to_cloud(transit_vp(), vm_, service_tier::premium);
  check_path(p);
  EXPECT_TRUE(p.cloud_edge.has_value());
  EXPECT_TRUE(p.src_access.has_value());
  EXPECT_FALSE(p.dst_access.has_value());  // the PoP endpoint is not a host
  // Path ends at the region's cloud router.
  const router_info& last = net_.topo->router_at(p.routers.back());
  EXPECT_EQ(last.owner, net_.cloud);
  EXPECT_EQ(last.city, region_city_);
}

TEST_F(RoutingTest, StandardTierEntersAtRegionPop) {
  const endpoint src = transit_vp();
  const route_path p = planner_.to_cloud(src, vm_, service_tier::standard);
  check_path(p);
  ASSERT_TRUE(p.cloud_edge.has_value());
  const link_info& edge = net_.topo->link_at(*p.cloud_edge);
  const router_index cloud_side =
      (net_.topo->owner_of(edge.a) == net_.cloud) ? edge.a : edge.b;
  EXPECT_EQ(net_.topo->router_at(cloud_side).city, region_city_)
      << "standard tier must cross at the region PoP";
}

TEST_F(RoutingTest, PremiumEntersNearSourceForFarSources) {
  // A VP abroad reaching a U.S. region on premium should enter the cloud
  // at a PoP much closer to the source than to the region. Concentration
  // policy and multi-continent AS footprints legitimately override this,
  // so pin the policy to pure cold-potato and use a single-city AS.
  planner_.set_region_policy(region_city_, {0.0, 1.0});
  endpoint src{};
  bool found = false;
  for (const host_index h : net_.vantage_points) {
    const host_info& info = net_.topo->host_at(h);
    const as_info& owner = net_.topo->as_at(info.owner);
    if (net_.geo->city(info.city).country != "US" &&
        owner.peers_with_cloud && owner.presence.size() == 1) {
      src = planner_.endpoint_of_host(h);
      found = true;
      break;
    }
  }
  if (!found) GTEST_SKIP() << "no international peering VP in fixture";

  const route_path p = planner_.to_cloud(src, vm_, service_tier::premium);
  planner_.set_region_policy(region_city_, {});
  ASSERT_TRUE(p.cloud_edge.has_value());
  const link_info& edge = net_.topo->link_at(*p.cloud_edge);
  const router_index cloud_side =
      (net_.topo->owner_of(edge.a) == net_.cloud) ? edge.a : edge.b;
  const city_info& entry = net_.geo->city(net_.topo->router_at(cloud_side).city);
  const double to_src = haversine_km(entry, net_.geo->city(src.city));
  const double to_region =
      haversine_km(entry, net_.geo->city(region_city_));
  EXPECT_LT(to_src, to_region);
}

TEST_F(RoutingTest, FromCloudMirrorsStructure) {
  const endpoint dst = peering_vp();
  const route_path p = planner_.from_cloud(vm_, dst, service_tier::premium);
  check_path(p);
  EXPECT_TRUE(p.cloud_edge.has_value());
  EXPECT_TRUE(p.dst_access.has_value());
  const router_info& first = net_.topo->router_at(p.routers.front());
  EXPECT_EQ(first.owner, net_.cloud);
  EXPECT_EQ(first.city, region_city_);
  // Last router belongs to the destination AS and is its attach router.
  EXPECT_EQ(p.routers.back(), net_.topo->host_at(*dst.host).attach);
}

TEST_F(RoutingTest, AsPathDedupsAndStartsOrEndsAtCloud) {
  const route_path p =
      planner_.to_cloud(transit_vp(), vm_, service_tier::standard);
  const auto ases = planner_.as_path(p);
  ASSERT_GE(ases.size(), 2u);
  EXPECT_EQ(ases.back(), cloud_asn());
  for (std::size_t i = 1; i < ases.size(); ++i) {
    EXPECT_NE(ases[i], ases[i - 1]);
  }
}

TEST_F(RoutingTest, DirectPeeringHasShorterAsPath) {
  const route_path direct =
      planner_.to_cloud(peering_vp(), vm_, service_tier::premium);
  const route_path via_transit =
      planner_.to_cloud(transit_vp(), vm_, service_tier::premium);
  EXPECT_EQ(planner_.as_hops_to_destination(direct), 1u);
  EXPECT_EQ(planner_.as_hops_to_destination(via_transit), 2u);
}

TEST_F(RoutingTest, PathsAreDeterministic) {
  const endpoint src = transit_vp();
  const route_path a = planner_.to_cloud(src, vm_, service_tier::premium);
  const route_path b = planner_.to_cloud(src, vm_, service_tier::premium);
  ASSERT_EQ(a.routers.size(), b.routers.size());
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    EXPECT_EQ(a.routers[i], b.routers[i]);
  }
}

TEST_F(RoutingTest, EndpointOfAddressResolvesAnchors) {
  // Take a host prefix of a known AS and resolve an address inside it.
  const as_index cox = *net_.topo->find_as(asn{22773});
  const announced_prefix& p = net_.topo->as_at(cox).prefixes[1];
  const endpoint e = planner_.endpoint_of_address(p.prefix.address_at(7));
  EXPECT_EQ(e.owner, cox);
  EXPECT_EQ(e.city, p.anchor);
  EXPECT_FALSE(e.host.has_value());
}

TEST_F(RoutingTest, EndpointOfUnroutedAddressThrows) {
  EXPECT_THROW(planner_.endpoint_of_address(ipv4_addr::parse("203.0.113.1")),
               not_found_error);
}

TEST_F(RoutingTest, CloudSourceRejected) {
  EXPECT_THROW(planner_.to_cloud(vm_, vm_, service_tier::premium),
               invalid_argument_error);
  EXPECT_THROW(planner_.from_cloud(vm_, vm_, service_tier::premium),
               invalid_argument_error);
}

TEST_F(RoutingTest, RegionPolicyDefaultsAndOverrides) {
  const egress_policy def = planner_.region_policy(city_id{0});
  EXPECT_NEAR(def.concentration, 0.2, 1e-12);
  planner_.set_region_policy(region_city_, {0.9, 0.5});
  EXPECT_NEAR(planner_.region_policy(region_city_).concentration, 0.9, 1e-12);
  planner_.set_region_policy(region_city_, {});  // restore defaults
}

TEST_F(RoutingTest, TierToString) {
  EXPECT_STREQ(to_string(service_tier::premium), "premium");
  EXPECT_STREQ(to_string(service_tier::standard), "standard");
}

// Property: over many vantage points, every premium and standard path is
// structurally valid and crosses exactly one cloud edge.
class RoutingPropertyTest : public RoutingTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(RoutingPropertyTest, AllPathsValid) {
  const std::size_t idx =
      static_cast<std::size_t>(GetParam()) * 17 % net_.vantage_points.size();
  const endpoint src =
      planner_.endpoint_of_host(net_.vantage_points[idx]);
  for (const service_tier tier :
       {service_tier::premium, service_tier::standard}) {
    const route_path p = planner_.to_cloud(src, vm_, tier);
    check_path(p);
    EXPECT_TRUE(p.cloud_edge.has_value());
    std::size_t cloud_crossings = 0;
    for (const path_hop& h : p.transit_hops) {
      const link_info& l = net_.topo->link_at(h.link);
      if (l.kind != link_kind::interdomain) continue;
      if (net_.topo->owner_of(l.a) == net_.cloud ||
          net_.topo->owner_of(l.b) == net_.cloud) {
        ++cloud_crossings;
      }
    }
    EXPECT_EQ(cloud_crossings, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(ManyVantagePoints, RoutingPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace clasp

// Bit-identity of the batched arena evaluator against the per-path
// evaluate(flat_path) walk it replaces (see network.hpp, path_arena).
// The batch sweep must produce byte-identical metrics with the cache
// off, on, stale (wrong hour), during planted congestion episodes, for
// paths of withdrawn servers and for synthetic >255-hop paths.
#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netsim/routing.hpp"
#include "speedtest/registry.hpp"
#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;

// Substrate + deployed fleet shared by the suite (leaky singleton; the
// fleet mutates the internet, so this binary gets its own instance
// instead of test_support's cached one).
struct batch_world {
  internet net;
  server_registry registry;
};

batch_world& world() {
  static batch_world* w = [] {
    auto* b = new batch_world{generate_internet(small_internet_config()),
                              server_registry{}};
    b->registry = deploy_servers(b->net, small_server_config());
    return b;
  }();
  return *w;
}

void expect_same_metrics(const path_metrics& a, const path_metrics& b) {
  // Exact equality, not near-equality: the batch path must perform the
  // same floating-point operations in the same order.
  EXPECT_EQ(a.base_rtt.value, b.base_rtt.value);
  EXPECT_EQ(a.rtt.value, b.rtt.value);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.bottleneck.value, b.bottleneck.value);
  EXPECT_EQ(a.bottleneck_link.value, b.bottleneck_link.value);
  EXPECT_EQ(a.bottleneck_util, b.bottleneck_util);
  EXPECT_EQ(a.episode, b.episode);
}

class NetworkBatchTest : public ::testing::Test {
 protected:
  NetworkBatchTest()
      : net_(world().net), planner_(&net_), view_(&net_) {
    const city_id region = net_.geo->city_by_name("The Dalles, OR").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    vm_ = endpoint{net_.cloud, region,
                   net_.topo->router_at(*router).loopback, std::nullopt};

    // A varied path population: every 11th server (ISPs, hosting,
    // education, business, international mix) plus a spread of vantage
    // points, each under both service tiers.
    const auto& servers = world().registry.all();
    for (std::size_t i = 0; i < servers.size(); i += 11) {
      add_path(planner_.endpoint_of_host(servers[i].host),
               service_tier::premium);
      add_path(planner_.endpoint_of_host(servers[i].host),
               service_tier::standard);
    }
    for (std::size_t i = 0; i < net_.vantage_points.size(); i += 16) {
      add_path(planner_.endpoint_of_host(net_.vantage_points[i]),
               service_tier::premium);
    }
  }

  void add_path(const endpoint& src, service_tier tier) {
    routes_.push_back(planner_.to_cloud(src, vm_, tier));
    flats_.push_back(view_.flatten(routes_.back()));
    arena_.add(flats_.back());
  }

  // Register every path's links and prefill the view's cache for `at`.
  void prefill(hour_stamp at) {
    for (const route_path& p : routes_) view_.link_cache().register_path(p);
    view_.link_cache().prefill(at);
  }

  void expect_batch_matches(hour_stamp at) {
    std::vector<path_metrics> out(arena_.size());
    view_.evaluate_batch(arena_, at, 0, arena_.size(), out.data());
    for (std::size_t p = 0; p < flats_.size(); ++p) {
      SCOPED_TRACE("path " + std::to_string(p));
      expect_same_metrics(out[p], view_.evaluate(flats_[p], at));
    }
  }

  internet& net_;
  route_planner planner_;
  network_view view_;
  endpoint vm_;
  std::vector<route_path> routes_;
  std::vector<flat_path> flats_;
  path_arena arena_;
};

TEST_F(NetworkBatchTest, MatchesEvaluateWithoutCache) {
  // No registration, no prefill: every hop takes the compute fallback.
  arena_.resolve(view_.link_cache());
  ASSERT_GT(arena_.size(), 40u);
  for (int h = 0; h < 24; ++h) {
    expect_batch_matches(hour_stamp::from_civil({2020, 6, 1}, 0) + h);
  }
}

TEST_F(NetworkBatchTest, MatchesEvaluateWithPrefilledCache) {
  const hour_stamp at = hour_stamp::from_civil({2020, 6, 3}, 20);
  prefill(at);
  arena_.resolve(view_.link_cache());
  expect_batch_matches(at);
}

TEST_F(NetworkBatchTest, MatchesEvaluateAtNonPrefilledHour) {
  // A stale epoch must fall back to the load model, like lookup() misses.
  const hour_stamp filled = hour_stamp::from_civil({2020, 6, 3}, 20);
  prefill(filled);
  arena_.resolve(view_.link_cache());
  expect_batch_matches(filled + 1);
}

TEST_F(NetworkBatchTest, ResolveBeforeRegistrationStaysOnFallback) {
  // Resolving against an empty cache pins every hop to kUnresolved; a
  // later registration + prefill must not change batch results (they are
  // computed, not read from the table) — identity still holds.
  arena_.resolve(view_.link_cache());
  const hour_stamp at = hour_stamp::from_civil({2020, 7, 11}, 8);
  prefill(at);
  expect_batch_matches(at);
}

TEST_F(NetworkBatchTest, EpisodeHoursStayIdentical) {
  const hour_stamp base = hour_stamp::from_civil({2020, 5, 1}, 0);
  prefill(base);
  arena_.resolve(view_.link_cache());
  std::vector<path_metrics> out(arena_.size());
  std::size_t episode_hours = 0;
  for (int h = 0; h < 24 * 14; ++h) {
    const hour_stamp at = base + h;
    view_.link_cache().prefill(at);
    view_.evaluate_batch(arena_, at, 0, arena_.size(), out.data());
    for (std::size_t p = 0; p < flats_.size(); ++p) {
      const path_metrics ref = view_.evaluate(flats_[p], at);
      if (ref.episode) ++episode_hours;
      SCOPED_TRACE("path " + std::to_string(p) + " hour " + std::to_string(h));
      expect_same_metrics(out[p], ref);
    }
  }
  // The planted ground truth guarantees congestion episodes in any
  // two-week window of a fleet this size.
  EXPECT_GT(episode_hours, 0u);
}

TEST_F(NetworkBatchTest, WithdrawnServerPathsEvaluateIdentically) {
  // Withdrawal is a registry-level event: the server vanishes from
  // crawls, but its attached host and routed path stay evaluable — and
  // the arena, built at deploy time, keeps serving it bit-identically.
  const auto& servers = world().registry.all();
  std::vector<std::size_t> withdrawn;
  for (std::size_t i = 5; i < servers.size() && withdrawn.size() < 8;
       i += 37) {
    withdrawn.push_back(i);
  }
  path_arena arena;
  std::vector<flat_path> flats;
  for (const std::size_t id : withdrawn) {
    const route_path p = planner_.to_cloud(
        planner_.endpoint_of_host(servers[id].host), vm_,
        service_tier::premium);
    view_.link_cache().register_path(p);
    flats.push_back(view_.flatten(p));
    arena.add(flats.back());
  }
  for (const std::size_t id : withdrawn) world().registry.retire_server(id);

  const hour_stamp at = hour_stamp::from_civil({2020, 8, 9}, 21);
  view_.link_cache().prefill(at);
  arena.resolve(view_.link_cache());
  std::vector<path_metrics> out(arena.size());
  view_.evaluate_batch(arena, at, 0, arena.size(), out.data());
  for (std::size_t p = 0; p < flats.size(); ++p) {
    EXPECT_TRUE(world().registry.retired(withdrawn[p]));
    expect_same_metrics(out[p], view_.evaluate(flats[p], at));
  }
}

TEST_F(NetworkBatchTest, PathsBeyond255HopsMatch) {
  // Synthetic ultra-long path: one real path's hop sequence tiled until
  // it crosses 255 hops (the point where a byte-sized hop index would
  // wrap) — the arena's 32-bit offsets must keep every term identical.
  ASSERT_FALSE(flats_.empty());
  flat_path longest = flats_.front();
  while (longest.hops.size() <= 300) {
    longest.hops.insert(longest.hops.end(), flats_.front().hops.begin(),
                        flats_.front().hops.end());
  }
  ASSERT_GT(longest.hops.size(), 255u);
  path_arena arena;
  arena.add(longest);
  arena.add(flats_.front());

  const hour_stamp at = hour_stamp::from_civil({2020, 6, 20}, 19);
  prefill(at);
  arena.resolve(view_.link_cache());
  std::vector<path_metrics> out(arena.size());
  view_.evaluate_batch(arena, at, 0, arena.size(), out.data());
  expect_same_metrics(out[0], view_.evaluate(longest, at));
  expect_same_metrics(out[1], view_.evaluate(flats_.front(), at));
}

TEST_F(NetworkBatchTest, PartialRangesCoverExactlyTheirPaths) {
  const hour_stamp at = hour_stamp::from_civil({2020, 6, 5}, 7);
  prefill(at);
  arena_.resolve(view_.link_cache());
  const std::size_t n = arena_.size();
  ASSERT_GT(n, 3u);
  // Poison the output, evaluate [1, n-1), and check the ends are
  // untouched while the interior matches the per-path walk.
  std::vector<path_metrics> out(n);
  out[0].loss = -7.0;
  out[n - 1].loss = -7.0;
  view_.evaluate_batch(arena_, at, 1, n - 1, out.data());
  EXPECT_EQ(out[0].loss, -7.0);
  EXPECT_EQ(out[n - 1].loss, -7.0);
  for (std::size_t p = 1; p + 1 < n; ++p) {
    expect_same_metrics(out[p], view_.evaluate(flats_[p], at));
  }
}

}  // namespace
}  // namespace clasp

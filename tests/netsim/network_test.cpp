#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

class NetworkViewTest : public ::testing::Test {
 protected:
  NetworkViewTest() : net_(small_internet()), planner_(&net_), view_(&net_) {
    const city_id region = net_.geo->city_by_name("The Dalles, OR").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    vm_ = endpoint{net_.cloud, region,
                   net_.topo->router_at(*router).loopback, std::nullopt};
    src_ = planner_.endpoint_of_host(net_.vantage_points.front());
    path_ = planner_.to_cloud(src_, vm_, service_tier::premium);
  }

  internet& net_;
  route_planner planner_;
  network_view view_;
  endpoint vm_, src_;
  route_path path_;
};

TEST_F(NetworkViewTest, NullNetRejected) {
  EXPECT_THROW(network_view(nullptr), invalid_argument_error);
}

TEST_F(NetworkViewTest, RttAtLeastBaseRtt) {
  for (int h = 0; h < 48; ++h) {
    const hour_stamp t = hour_stamp::from_civil({2020, 6, 1}, 0) + h;
    const path_metrics m = view_.evaluate(path_, t);
    EXPECT_GE(m.rtt.value, m.base_rtt.value - 1e-9);
    EXPECT_GT(m.base_rtt.value, 0.0);
  }
}

TEST_F(NetworkViewTest, BaseRttMatchesEvaluate) {
  const path_metrics m =
      view_.evaluate(path_, hour_stamp::from_civil({2020, 6, 1}, 4));
  EXPECT_NEAR(view_.base_rtt(path_).value, m.base_rtt.value, 1e-9);
}

TEST_F(NetworkViewTest, LossIsProbability) {
  for (int h = 0; h < 72; ++h) {
    const hour_stamp t = hour_stamp::from_civil({2020, 7, 1}, 0) + h;
    const path_metrics m = view_.evaluate(path_, t);
    EXPECT_GE(m.loss, 0.0);
    EXPECT_LT(m.loss, 1.0);
  }
}

TEST_F(NetworkViewTest, BottleneckPositiveAndBounded) {
  const path_metrics m =
      view_.evaluate(path_, hour_stamp::from_civil({2020, 6, 1}, 20));
  EXPECT_GT(m.bottleneck.value, 0.0);
  // No wider than the smallest capacity on the path.
  double min_cap = 1e18;
  if (path_.src_access) {
    min_cap = std::min(min_cap,
                       net_.topo->link_at(path_.src_access->link).capacity.value);
  }
  for (const path_hop& h : path_.transit_hops) {
    min_cap = std::min(min_cap, net_.topo->link_at(h.link).capacity.value);
  }
  EXPECT_LE(m.bottleneck.value, min_cap + 1e-6);
}

TEST_F(NetworkViewTest, BottleneckLinkIsOnPath) {
  const path_metrics m =
      view_.evaluate(path_, hour_stamp::from_civil({2020, 6, 1}, 20));
  bool on_path = path_.src_access && path_.src_access->link == m.bottleneck_link;
  for (const path_hop& h : path_.transit_hops) {
    if (h.link == m.bottleneck_link) on_path = true;
  }
  if (path_.dst_access && path_.dst_access->link == m.bottleneck_link) {
    on_path = true;
  }
  EXPECT_TRUE(on_path);
}

TEST_F(NetworkViewTest, DelayToRouterIsMonotone) {
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 1}, 12);
  double prev = -1.0;
  for (std::size_t i = 0; i < path_.routers.size(); ++i) {
    const double d = view_.delay_to_router(path_, i, t).value;
    EXPECT_GT(d, prev);
    prev = d;
  }
  EXPECT_THROW(view_.delay_to_router(path_, path_.routers.size(), t),
               invalid_argument_error);
}

TEST_F(NetworkViewTest, EvaluateIsDeterministic) {
  const hour_stamp t = hour_stamp::from_civil({2020, 8, 9}, 21);
  const path_metrics a = view_.evaluate(path_, t);
  const path_metrics b = view_.evaluate(path_, t);
  EXPECT_DOUBLE_EQ(a.rtt.value, b.rtt.value);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_DOUBLE_EQ(a.bottleneck.value, b.bottleneck.value);
}

TEST_F(NetworkViewTest, EpisodeGroundTruthMatchesPlantedLinks) {
  // Find a planted link and construct a time inside its window; a path
  // crossing it in the right direction must report the episode.
  ASSERT_FALSE(net_.planted.empty());
  const auto& planted = net_.planted.front();
  const link_info& l = net_.topo->link_at(planted.link);
  const load_profile& prof = net_.load->profile(l.load_profile);

  // Search a few weeks for an active hour (episode days are stochastic).
  bool found = false;
  for (int h = 0; h < 24 * 28 && !found; ++h) {
    const hour_stamp t = hour_stamp::from_civil({2020, 5, 1}, 0) + h;
    if (net_.load->episode_active(l.load_profile, planted.link, planted.dir,
                                  t)) {
      found = true;
      route_path synthetic;
      synthetic.routers.push_back(l.a);
      synthetic.routers.push_back(l.b);
      synthetic.transit_hops.push_back(
          {planted.link, planted.dir == link_dir::a_to_b
                             ? link_dir::a_to_b
                             : link_dir::b_to_a});
      // Fix connectivity orientation: hop must leave routers[0].
      if (planted.dir == link_dir::b_to_a) {
        std::swap(synthetic.routers[0], synthetic.routers[1]);
      }
      EXPECT_TRUE(view_.episode_on_path(synthetic, t));
      const path_metrics m = view_.evaluate(synthetic, t);
      EXPECT_TRUE(m.episode);
    }
  }
  EXPECT_TRUE(found) << "no active hour found for the first planted episode";
  (void)prof;
}

TEST_F(NetworkViewTest, CongestedHourDegradesBottleneck) {
  // Statistical check: over a month, 8 pm local avail is below 4 am avail
  // for the vantage point path (diurnal background load).
  double peak_sum = 0.0, trough_sum = 0.0;
  int days = 28;
  for (int d = 0; d < days; ++d) {
    const hour_stamp base = hour_stamp::from_civil({2020, 6, 1}, 0) + d * 24;
    // Convert local hours to UTC using the source timezone.
    const int tz = net_.geo->city(src_.city).tz.hours_east_of_utc;
    const hour_stamp peak = base + ((20 - tz) % 24);
    const hour_stamp trough = base + ((4 - tz + 24) % 24);
    peak_sum += view_.evaluate(path_, peak).bottleneck.value;
    trough_sum += view_.evaluate(path_, trough).bottleneck.value;
  }
  EXPECT_LT(peak_sum, trough_sum);
}

}  // namespace
}  // namespace clasp

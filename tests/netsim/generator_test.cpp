#include "netsim/generator.hpp"

#include "netsim/routing.hpp"
#include "netsim/validate.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;
using ::clasp::testing::small_internet_config;

TEST(GeneratorTest, PopulationScalesWithConfig) {
  const internet& net = small_internet();
  const internet_config& cfg = net.config;
  // Named table adds a few dozen on top of the procedural counts.
  const std::size_t expected_min = cfg.regional_isp_count + cfg.hosting_count +
                                   cfg.business_count + cfg.education_count +
                                   cfg.large_isp_count + cfg.tier1_count;
  EXPECT_GE(net.topo->as_count(), expected_min);
  EXPECT_LE(net.topo->as_count(), expected_min + 80);
}

TEST(GeneratorTest, CloudAsExistsWithPops) {
  const internet& net = small_internet();
  EXPECT_EQ(net.cloud_as().number, cloud_asn());
  EXPECT_EQ(net.cloud_as().role, as_role::cloud);
  EXPECT_GT(net.pop_cities.size(), 30u);
  // Region host cities must be PoPs.
  for (const char* name : {"The Dalles, OR", "Ashburn, VA", "St. Ghislain"}) {
    const city_id c = net.geo->city_by_name(name).id;
    EXPECT_TRUE(net.topo->router_of(net.cloud, c).has_value()) << name;
  }
}

TEST(GeneratorTest, NamedCaseStudyAsesExist) {
  const internet& net = small_internet();
  const struct {
    std::uint32_t number;
    congestion_archetype archetype;
  } expected[] = {
      {22773, congestion_archetype::daytime_reverse},    // Cox
      {46276, congestion_archetype::all_day},            // Smarterbroadband
      {174, congestion_archetype::evening_eyeball},      // Cogent
      {1221, congestion_archetype::std_path_episodes},   // Telstra
      {136334, congestion_archetype::std_path_episodes}, // Vortex
      {55836, congestion_archetype::lossy_premium},      // Jio
  };
  for (const auto& e : expected) {
    const auto idx = net.topo->find_as(asn{e.number});
    ASSERT_TRUE(idx.has_value()) << "AS" << e.number;
    EXPECT_EQ(net.archetype(*idx), e.archetype) << "AS" << e.number;
    EXPECT_TRUE(net.topo->as_at(*idx).peers_with_cloud) << "AS" << e.number;
  }
}

TEST(GeneratorTest, EveryEdgeAsHasTransitAndPrefixes) {
  const internet& net = small_internet();
  for (const as_info& a : net.topo->ases()) {
    if (a.role == as_role::cloud || a.role == as_role::tier1 ||
        a.role == as_role::transit) {
      continue;
    }
    EXPECT_TRUE(a.primary_transit.has_value()) << a.name;
    EXPECT_TRUE(net.transit_link_of.contains(a.index.value)) << a.name;
    // prefixes[0] = infra, then at least one host prefix.
    EXPECT_GE(a.prefixes.size(), 2u) << a.name;
    EXPECT_FALSE(a.presence.empty()) << a.name;
  }
}

TEST(GeneratorTest, InterdomainLinksUseProviderAddressing) {
  const internet& net = small_internet();
  const ipv4_prefix pool = cloud_interconnect_pool();
  std::size_t cloud_links = 0;
  for (const link_info& l : net.topo->links()) {
    if (l.kind != link_kind::interdomain) continue;
    const bool cloud_side = net.topo->owner_of(l.a) == net.cloud ||
                            net.topo->owner_of(l.b) == net.cloud;
    if (cloud_side) {
      ++cloud_links;
      // Both interfaces come from the announced interconnect pool: this is
      // precisely what makes naive prefix2as mis-attribute the far side.
      EXPECT_TRUE(pool.contains(l.addr_a));
      EXPECT_TRUE(pool.contains(l.addr_b));
    }
  }
  EXPECT_GT(cloud_links, 300u);
}

TEST(GeneratorTest, PlantedEpisodesRecorded) {
  const internet& net = small_internet();
  EXPECT_GT(net.planted.size(), 20u);
  for (const auto& p : net.planted) {
    const link_info& l = net.topo->link_at(p.link);
    const load_profile& prof = net.load->profile(l.load_profile);
    const direction_load& d =
        (p.dir == link_dir::a_to_b) ? prof.fwd : prof.rev;
    EXPECT_EQ(d.episodes, p.kind);
    EXPECT_GT(d.episode_prob, 0.0);
  }
}

TEST(GeneratorTest, VantagePointsAttached) {
  const internet& net = small_internet();
  // The configured count plus the seeded VPs in the named case-study ASes.
  EXPECT_GE(net.vantage_points.size(), net.config.vantage_point_count);
  EXPECT_LE(net.vantage_points.size(), net.config.vantage_point_count + 80);
  for (const host_index h : net.vantage_points) {
    const host_info& info = net.topo->host_at(h);
    const as_role role = net.topo->as_at(info.owner).role;
    EXPECT_TRUE(role == as_role::access_isp || role == as_role::regional_isp);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  internet a = generate_internet(small_internet_config());
  internet b = generate_internet(small_internet_config());
  EXPECT_EQ(a.topo->as_count(), b.topo->as_count());
  EXPECT_EQ(a.topo->link_count(), b.topo->link_count());
  EXPECT_EQ(a.topo->host_count(), b.topo->host_count());
  // Spot check structural equality.
  for (std::size_t i = 0; i < a.topo->link_count(); i += 97) {
    const link_info& la = a.topo->link_at(link_index{(std::uint32_t)i});
    const link_info& lb = b.topo->link_at(link_index{(std::uint32_t)i});
    EXPECT_EQ(la.addr_a, lb.addr_a);
    EXPECT_EQ(la.capacity.value, lb.capacity.value);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  internet_config cfg = small_internet_config();
  cfg.seed = 999;
  internet b = generate_internet(cfg);
  const internet& a = small_internet();
  // Same structure sizes are possible, but link addressing layouts differ.
  bool any_diff = a.topo->link_count() != b.topo->link_count();
  const std::size_t n = std::min(a.topo->link_count(), b.topo->link_count());
  for (std::size_t i = 0; i < n && !any_diff; i += 13) {
    any_diff = a.topo->link_at(link_index{(std::uint32_t)i}).capacity.value !=
               b.topo->link_at(link_index{(std::uint32_t)i}).capacity.value;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, ConfigValidation) {
  internet_config bad = small_internet_config();
  bad.tier1_count = 0;
  EXPECT_THROW(generate_internet(bad), invalid_argument_error);
  bad = small_internet_config();
  bad.congestion_prone_fraction = 1.5;
  EXPECT_THROW(generate_internet(bad), invalid_argument_error);
  bad = small_internet_config();
  bad.episode_prob_lo = 0.9;
  bad.episode_prob_hi = 0.1;
  EXPECT_THROW(generate_internet(bad), invalid_argument_error);
}

TEST(GeneratorTest, AttachHostAllocatesFromOwnSpace) {
  internet net = generate_internet(small_internet_config());
  rng r(5);
  // Find an eyeball AS.
  const as_index cox = *net.topo->find_as(asn{22773});
  const city_id city = net.topo->as_at(cox).presence.front();
  const host_index h =
      net.attach_host(cox, city, host_flavor::server, mbps{1000.0}, r);
  const host_info& info = net.topo->host_at(h);
  bool in_own_prefix = false;
  for (const announced_prefix& p : net.topo->as_at(cox).prefixes) {
    if (p.prefix.contains(info.addr)) in_own_prefix = true;
  }
  EXPECT_TRUE(in_own_prefix);
}

TEST(GeneratorTest, AttachHostRejectsForeignCity) {
  internet net = generate_internet(small_internet_config());
  rng r(5);
  const as_index smarter = *net.topo->find_as(asn{46276});
  const city_id tokyo = net.geo->city_by_name("Tokyo").id;
  EXPECT_THROW(
      net.attach_host(smarter, tokyo, host_flavor::server, mbps{1.0}, r),
      not_found_error);
}

TEST(GeneratorTest, WanIsFullMesh) {
  const internet& net = small_internet();
  std::size_t wan_links = 0;
  for (const link_info& l : net.topo->links()) {
    if (l.kind == link_kind::cloud_wan) ++wan_links;
  }
  const std::size_t n = net.pop_cities.size();
  EXPECT_EQ(wan_links, n * (n - 1) / 2);
}

TEST(GeneratorTest, IpinfoCoversMostAses) {
  const internet& net = small_internet();
  std::size_t known = 0, total = 0;
  for (const as_info& a : net.topo->ases()) {
    if (a.role == as_role::cloud) continue;
    ++total;
    if (net.ipinfo.type_of(a.number) != business_type::unknown) ++known;
  }
  const double coverage = static_cast<double>(known) / total;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 1.0);  // the configured gap exists
}

}  // namespace
}  // namespace clasp
// Appended: configuration-extremes property sweep.
namespace clasp {
namespace {

struct extreme_case {
  const char* name;
  internet_config config;
};

class GeneratorExtremes : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorExtremes, SurvivesAndValidates) {
  internet_config cfg = ::clasp::testing::small_internet_config();
  switch (GetParam()) {
    case 0:  // minimal edge population
      cfg.regional_isp_count = 0;
      cfg.hosting_count = 5;
      cfg.business_count = 5;
      cfg.education_count = 0;
      cfg.vantage_point_count = 10;
      break;
    case 1:  // everyone peers
      cfg.peering_prob_regional_isp = 1.0;
      cfg.peering_prob_business = 1.0;
      cfg.peering_prob_hosting = 1.0;
      break;
    case 2:  // nobody (procedurally) peers
      cfg.peering_prob_large_isp = 0.0;
      cfg.peering_prob_regional_isp = 0.0;
      cfg.peering_prob_business = 0.0;
      cfg.peering_prob_hosting = 0.0;
      cfg.peering_prob_education = 0.0;
      break;
    case 3:  // all congestion-prone, max episodes
      cfg.congestion_prone_fraction = 1.0;
      cfg.episode_prob_lo = 0.9;
      cfg.episode_prob_hi = 0.95;
      break;
    case 4:  // single transit, minimum carriers
      cfg.tier1_count = 1;
      cfg.transit_count = 0;
      break;
  }
  internet net = generate_internet(cfg);
  // Every generated world passes the integrity validator...
  const validation_report report = validate_internet(net);
  for (const auto& issue : report.issues) {
    if (issue.level == validation_issue::severity::error) {
      ADD_FAILURE() << issue.what;
    }
  }
  // ...and can still route from a vantage point into a region.
  if (!net.vantage_points.empty()) {
    route_planner planner(&net);
    const city_id region = net.geo->city_by_name("Ashburn, VA").id;
    const auto router = net.topo->router_of(net.cloud, region);
    const endpoint vm{net.cloud, region,
                      net.topo->router_at(*router).loopback, std::nullopt};
    const endpoint src = planner.endpoint_of_host(net.vantage_points[0]);
    for (const service_tier tier :
         {service_tier::premium, service_tier::standard}) {
      const route_path path = planner.to_cloud(src, vm, tier);
      EXPECT_TRUE(path.cloud_edge.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Extremes, GeneratorExtremes, ::testing::Range(0, 5));

}  // namespace
}  // namespace clasp

#include "netsim/condition_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netsim/network.hpp"
#include "netsim/routing.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

// The cache's whole contract is "same bits as calling the load model";
// these comparisons are therefore exact, not EXPECT_NEAR.
void expect_same_condition(const link_condition& a, const link_condition& b) {
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.loss_rate, b.loss_rate);
  EXPECT_EQ(a.queue_delay.value, b.queue_delay.value);
  EXPECT_EQ(a.available.value, b.available.value);
  EXPECT_EQ(a.episode, b.episode);
}

void expect_same_metrics(const path_metrics& a, const path_metrics& b) {
  EXPECT_EQ(a.base_rtt.value, b.base_rtt.value);
  EXPECT_EQ(a.rtt.value, b.rtt.value);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.bottleneck.value, b.bottleneck.value);
  EXPECT_EQ(a.bottleneck_link.value, b.bottleneck_link.value);
  EXPECT_EQ(a.bottleneck_util, b.bottleneck_util);
  EXPECT_EQ(a.episode, b.episode);
}

std::vector<link_index> path_links(const route_path& path) {
  std::vector<link_index> out;
  if (path.src_access) out.push_back(path.src_access->link);
  for (const path_hop& h : path.transit_hops) out.push_back(h.link);
  if (path.dst_access) out.push_back(path.dst_access->link);
  return out;
}

class ConditionCacheTest : public ::testing::Test {
 protected:
  ConditionCacheTest() : net_(small_internet()), planner_(&net_) {
    const city_id region = net_.geo->city_by_name("The Dalles, OR").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    const endpoint vm{net_.cloud, region,
                      net_.topo->router_at(*router).loopback, std::nullopt};
    const endpoint src =
        planner_.endpoint_of_host(net_.vantage_points.front());
    path_ = planner_.to_cloud(src, vm, service_tier::premium);
    back_ = planner_.from_cloud(vm, src, service_tier::premium);
  }

  link_condition direct(link_index l, link_dir dir, hour_stamp at) const {
    const link_info& info = net_.topo->link_at(l);
    return net_.load->condition(info.load_profile, l, dir, at, info.capacity,
                                info.kind);
  }

  internet& net_;
  route_planner planner_;
  route_path path_, back_;
};

TEST_F(ConditionCacheTest, NullNetRejected) {
  EXPECT_THROW(condition_cache(nullptr), invalid_argument_error);
}

TEST_F(ConditionCacheTest, LookupBitIdenticalToDirectAcrossHoursAndDirs) {
  condition_cache cache(&net_);
  cache.register_path(path_);
  cache.register_path(back_);
  ASSERT_GT(cache.registered_count(), 0u);

  // Spans weekday/weekend and evening-peak hours so episode flags flip.
  for (int h = 0; h < 96; ++h) {
    const hour_stamp t = hour_stamp::from_civil({2020, 7, 3}, 0) + h;
    cache.prefill(t);
    for (const link_index l : path_links(path_)) {
      for (const link_dir dir : {link_dir::a_to_b, link_dir::b_to_a}) {
        const link_condition* cached = cache.lookup(l, dir, t);
        ASSERT_NE(cached, nullptr);
        expect_same_condition(*cached, direct(l, dir, t));
      }
    }
  }
}

TEST_F(ConditionCacheTest, PooledPrefillMatchesSerialPrefill) {
  condition_cache serial(&net_);
  condition_cache pooled(&net_);
  serial.register_path(path_);
  pooled.register_path(path_);

  thread_pool pool(4);
  const hour_stamp t = hour_stamp::from_civil({2020, 8, 14}, 19);
  serial.prefill(t);
  pooled.prefill(t, &pool);
  for (const link_index l : path_links(path_)) {
    for (const link_dir dir : {link_dir::a_to_b, link_dir::b_to_a}) {
      const link_condition* a = serial.lookup(l, dir, t);
      const link_condition* b = pooled.lookup(l, dir, t);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      expect_same_condition(*a, *b);
    }
  }
}

TEST_F(ConditionCacheTest, MissesReturnNull) {
  condition_cache cache(&net_);
  cache.register_path(path_);
  const link_index l = path_links(path_).front();
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 1}, 12);

  // Before any prefill.
  EXPECT_EQ(cache.lookup(l, link_dir::a_to_b, t), nullptr);

  cache.prefill(t);
  EXPECT_NE(cache.lookup(l, link_dir::a_to_b, t), nullptr);
  // Wrong hour.
  EXPECT_EQ(cache.lookup(l, link_dir::a_to_b, t + 1), nullptr);

  // An unregistered link misses even at the prefilled hour.
  condition_cache empty(&net_);
  empty.prefill(t);
  EXPECT_EQ(empty.lookup(l, link_dir::a_to_b, t), nullptr);
}

TEST_F(ConditionCacheTest, RegistrationIsIdempotent) {
  condition_cache cache(&net_);
  cache.register_path(path_);
  const std::size_t count = cache.registered_count();
  cache.register_path(path_);
  for (const link_index l : path_links(path_)) cache.register_link(l);
  EXPECT_EQ(cache.registered_count(), count);
}

TEST_F(ConditionCacheTest, RegistrationAfterPrefillInvalidatesEpoch) {
  condition_cache cache(&net_);
  cache.register_path(path_);
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 1}, 12);
  cache.prefill(t);

  // Growing the registered set must not let the old epoch serve a table
  // with unfilled slots: find any link not yet registered and add it.
  std::size_t grew = 0;
  for (std::uint32_t i = 0;
       i < net_.topo->link_count() && grew == 0; ++i) {
    const std::size_t before = cache.registered_count();
    cache.register_link(link_index{i});
    grew = cache.registered_count() - before;
  }
  ASSERT_EQ(grew, 1u);  // the small internet has links off this path
  const link_index l = path_links(path_).front();
  EXPECT_EQ(cache.lookup(l, link_dir::a_to_b, t), nullptr);
  cache.prefill(t);
  EXPECT_NE(cache.lookup(l, link_dir::a_to_b, t), nullptr);
}

TEST_F(ConditionCacheTest, ViewEvaluateIdenticalWithAndWithoutCache) {
  network_view cached_view(&net_);
  network_view plain_view(&net_);
  cached_view.link_cache().register_path(path_);
  cached_view.link_cache().register_path(back_);

  for (int h = 0; h < 48; ++h) {
    const hour_stamp t = hour_stamp::from_civil({2020, 9, 5}, 0) + h;
    cached_view.link_cache().prefill(t);
    expect_same_metrics(cached_view.evaluate(path_, t),
                        plain_view.evaluate(path_, t));
    expect_same_metrics(cached_view.evaluate(back_, t),
                        plain_view.evaluate(back_, t));
    EXPECT_EQ(cached_view.episode_on_path(path_, t),
              plain_view.episode_on_path(path_, t));
    for (std::size_t r = 0; r < path_.routers.size(); ++r) {
      EXPECT_EQ(cached_view.delay_to_router(path_, r, t).value,
                plain_view.delay_to_router(path_, r, t).value);
    }
  }
}

TEST_F(ConditionCacheTest, FlatEvaluateIdenticalToRouteEvaluate) {
  network_view view(&net_);
  const flat_path flat = view.flatten(path_);
  EXPECT_EQ(flat.hops.size(), path_links(path_).size());

  for (int h = 0; h < 48; ++h) {
    const hour_stamp t = hour_stamp::from_civil({2020, 10, 10}, 0) + h;
    // Uncached and cached hours both take the flat fast path.
    expect_same_metrics(view.evaluate(flat, t), view.evaluate(path_, t));
    view.link_cache().register_path(path_);
    view.link_cache().prefill(t);
    expect_same_metrics(view.evaluate(flat, t), view.evaluate(path_, t));
  }
  EXPECT_EQ(view.base_rtt(path_).value, flat.base_rtt.value);
}

}  // namespace
}  // namespace clasp

// fault_plan unit tests: presets, schedule determinism, and the
// invariants the campaign runner relies on (withdrawals never land on
// the first hour, outages stay inside the window, disabled plans draw
// nothing).
#include "netsim/faults.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

hour_range week() {
  return {hour_stamp::from_civil({2020, 5, 1}, 0),
          hour_stamp::from_civil({2020, 5, 8}, 0)};
}

std::vector<std::size_t> server_ids(std::size_t n) {
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i * 3 + 1;
  return ids;
}

TEST(FaultsTest, PresetsCoverTheThreeLevels) {
  EXPECT_FALSE(fault_config::preset("off").enabled);
  const fault_config low = fault_config::preset("low");
  EXPECT_TRUE(low.enabled);
  EXPECT_GT(low.test_failure_rate, 0.0);
  const fault_config high = fault_config::preset("high");
  EXPECT_TRUE(high.enabled);
  EXPECT_GT(high.server_churn_rate, low.server_churn_rate);
  EXPECT_GT(high.test_failure_rate, low.test_failure_rate);
  EXPECT_GT(high.vm_preemption_rate, low.vm_preemption_rate);
  EXPECT_THROW(fault_config::preset("medium"), invalid_argument_error);
}

TEST(FaultsTest, DisabledPlanIsEmpty) {
  const fault_plan plan =
      fault_plan::build(fault_config{}, 42, 4, server_ids(50), week());
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.withdrawal_count(), 0u);
  EXPECT_TRUE(plan.outages().empty());
  EXPECT_FALSE(plan.withdraw_hour(1).has_value());
}

TEST(FaultsTest, BuildIsDeterministic) {
  const fault_config cfg = fault_config::preset("high");
  const fault_plan a = fault_plan::build(cfg, 42, 4, server_ids(200), week());
  const fault_plan b = fault_plan::build(cfg, 42, 4, server_ids(200), week());
  ASSERT_EQ(a.withdrawal_count(), b.withdrawal_count());
  EXPECT_EQ(a.withdrawals(), b.withdrawals());
  ASSERT_EQ(a.outages().size(), b.outages().size());
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].vm_slot, b.outages()[i].vm_slot);
    EXPECT_EQ(a.outages()[i].window.begin_at, b.outages()[i].window.begin_at);
    EXPECT_EQ(a.outages()[i].window.end_at, b.outages()[i].window.end_at);
  }
  // A worker-count change (vm_count fixed) must not be the only thing
  // keeping schedules apart: a different seed gives a different plan.
  const fault_plan c = fault_plan::build(cfg, 43, 4, server_ids(200), week());
  EXPECT_NE(a.withdrawals(), c.withdrawals());
}

TEST(FaultsTest, ChurnDrawsArePerServer) {
  // Removing servers from the list never changes another server's draw.
  const fault_config cfg = fault_config::preset("high");
  const fault_plan full =
      fault_plan::build(cfg, 42, 4, server_ids(200), week());
  std::vector<std::size_t> half = server_ids(200);
  half.resize(100);
  const fault_plan partial = fault_plan::build(cfg, 42, 4, half, week());
  for (const std::size_t sid : half) {
    EXPECT_EQ(full.withdraw_hour(sid), partial.withdraw_hour(sid));
  }
}

TEST(FaultsTest, WithdrawalsSpareTheFirstHour) {
  const fault_config cfg = fault_config::preset("high");
  const fault_plan plan =
      fault_plan::build(cfg, 7, 2, server_ids(400), week());
  ASSERT_GT(plan.withdrawal_count(), 0u);
  for (const auto& [sid, at] : plan.withdrawals()) {
    EXPECT_GT(at, week().begin_at);
    EXPECT_LT(at, week().end_at);
    EXPECT_TRUE(plan.withdrawn_by(sid, at));
    EXPECT_FALSE(plan.withdrawn_by(sid, at + (-1)));
  }
}

TEST(FaultsTest, OutagesStayInsideTheWindow) {
  fault_config cfg = fault_config::preset("high");
  cfg.vm_preemption_rate = 0.05;  // force plenty of windows
  const fault_plan plan =
      fault_plan::build(cfg, 7, 8, server_ids(10), week());
  ASSERT_FALSE(plan.outages().empty());
  for (const vm_outage& o : plan.outages()) {
    EXPECT_LT(o.vm_slot, 8u);
    EXPECT_GE(o.window.begin_at, week().begin_at);
    EXPECT_LE(o.window.end_at, week().end_at);
    EXPECT_LT(o.window.begin_at, o.window.end_at);
  }
}

TEST(FaultsTest, BadOutageBoundsThrow) {
  fault_config cfg = fault_config::preset("low");
  cfg.vm_outage_hours_min = 0;
  EXPECT_THROW(fault_plan::build(cfg, 1, 1, server_ids(5), week()),
               invalid_argument_error);
  cfg.vm_outage_hours_min = 5;
  cfg.vm_outage_hours_max = 2;
  EXPECT_THROW(fault_plan::build(cfg, 1, 1, server_ids(5), week()),
               invalid_argument_error);
}

TEST(FaultsTest, FaultStreamIsCounterBased) {
  const fault_config cfg = fault_config::preset("low");
  const fault_plan plan =
      fault_plan::build(cfg, 42, 4, server_ids(10), week());
  rng a = plan.vm_fault_stream(2, week().begin_at + 5);
  rng b = plan.vm_fault_stream(2, week().begin_at + 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform(), b.uniform());
  // Distinct (slot, hour) pairs get distinct streams.
  rng c = plan.vm_fault_stream(3, week().begin_at + 5);
  rng d = plan.vm_fault_stream(2, week().begin_at + 6);
  EXPECT_NE(a.uniform(), c.uniform());
  EXPECT_NE(a.uniform(), d.uniform());
}

TEST(ChurnPlanTest, DisabledPlanKeepsEveryoneOnline) {
  const churn_plan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.online(7, week().begin_at + 3));
  EXPECT_EQ(plan.online_count(week().begin_at), 0u);  // no entities built
  EXPECT_EQ(plan.join_count(), 0u);
  EXPECT_EQ(plan.leave_count(), 0u);
}

TEST(ChurnPlanTest, TimelinesAreDeterministicPerSeedAndKind) {
  const churn_plan a = churn_plan::build(42, "swarm", 60, week(), 0.2, 0.1);
  const churn_plan b = churn_plan::build(42, "swarm", 60, week(), 0.2, 0.1);
  for (std::size_t e = 0; e < 60; ++e) {
    for (hour_stamp t = week().begin_at; t < week().end_at; t = t + 1) {
      EXPECT_EQ(a.online(e, t), b.online(e, t));
    }
  }
  EXPECT_EQ(a.join_count(), b.join_count());
  EXPECT_EQ(a.leave_count(), b.leave_count());
  // A different seed or stream kind decorrelates the timelines.
  const churn_plan c = churn_plan::build(43, "swarm", 60, week(), 0.2, 0.1);
  const churn_plan d = churn_plan::build(42, "other", 60, week(), 0.2, 0.1);
  std::size_t differs_c = 0, differs_d = 0;
  for (std::size_t e = 0; e < 60; ++e) {
    for (hour_stamp t = week().begin_at; t < week().end_at; t = t + 1) {
      differs_c += a.online(e, t) != c.online(e, t);
      differs_d += a.online(e, t) != d.online(e, t);
    }
  }
  EXPECT_GT(differs_c, 0u);
  EXPECT_GT(differs_d, 0u);
}

TEST(ChurnPlanTest, RatesShapeTheStationaryPopulation) {
  // join/(join+leave) = 0.8: roughly 80% of entities online at any hour.
  const churn_plan plan =
      churn_plan::build(7, "swarm", 400, week(), 0.4, 0.1);
  EXPECT_TRUE(plan.enabled());
  for (hour_stamp t = week().begin_at; t < week().end_at; t = t + 24) {
    const std::size_t online = plan.online_count(t);
    EXPECT_GT(online, 400u * 6 / 10);
    EXPECT_LT(online, 400u * 95 / 100);
  }
  EXPECT_GT(plan.join_count(), 0u);
  EXPECT_GT(plan.leave_count(), 0u);
  // Degenerate chains pin the population to the edges.
  const churn_plan all_on =
      churn_plan::build(7, "swarm", 50, week(), 1.0, 0.0);
  const churn_plan all_off =
      churn_plan::build(7, "swarm", 50, week(), 0.0, 1.0);
  for (hour_stamp t = week().begin_at; t < week().end_at; t = t + 13) {
    EXPECT_EQ(all_on.online_count(t), 50u);
    EXPECT_EQ(all_off.online_count(t), 0u);
  }
}

TEST(ChurnPlanTest, TransitionCountsMatchTheTimeline) {
  const churn_plan plan =
      churn_plan::build(11, "swarm", 30, week(), 0.3, 0.2);
  std::size_t joins = 0, leaves = 0;
  for (std::size_t e = 0; e < 30; ++e) {
    bool prev = plan.online(e, week().begin_at);
    for (hour_stamp t = week().begin_at + 1; t < week().end_at; t = t + 1) {
      const bool now = plan.online(e, t);
      joins += !prev && now;
      leaves += prev && !now;
      prev = now;
    }
  }
  EXPECT_EQ(plan.join_count(), joins);
  EXPECT_EQ(plan.leave_count(), leaves);
}

TEST(ChurnPlanTest, BadRatesAndEmptyWindowThrow) {
  EXPECT_THROW(churn_plan::build(1, "swarm", 5, week(), -0.1, 0.5),
               invalid_argument_error);
  EXPECT_THROW(churn_plan::build(1, "swarm", 5, week(), 0.5, 1.5),
               invalid_argument_error);
  EXPECT_THROW(churn_plan::build(1, "swarm", 5,
                                 {week().begin_at, week().begin_at}, 0.5, 0.5),
               invalid_argument_error);
}

TEST(FaultsTest, OutcomeNames) {
  EXPECT_STREQ(to_string(test_outcome::ok), "ok");
  EXPECT_STREQ(to_string(test_outcome::ok_after_retry), "ok_after_retry");
  EXPECT_STREQ(to_string(test_outcome::failed), "failed");
  EXPECT_STREQ(to_string(test_outcome::server_withdrawn),
               "server_withdrawn");
  EXPECT_STREQ(to_string(test_outcome::vm_down), "vm_down");
  EXPECT_STREQ(to_string(test_outcome::skipped_budget), "skipped_budget");
}

}  // namespace
}  // namespace clasp

// fault_plan unit tests: presets, schedule determinism, and the
// invariants the campaign runner relies on (withdrawals never land on
// the first hour, outages stay inside the window, disabled plans draw
// nothing).
#include "netsim/faults.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

hour_range week() {
  return {hour_stamp::from_civil({2020, 5, 1}, 0),
          hour_stamp::from_civil({2020, 5, 8}, 0)};
}

std::vector<std::size_t> server_ids(std::size_t n) {
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i * 3 + 1;
  return ids;
}

TEST(FaultsTest, PresetsCoverTheThreeLevels) {
  EXPECT_FALSE(fault_config::preset("off").enabled);
  const fault_config low = fault_config::preset("low");
  EXPECT_TRUE(low.enabled);
  EXPECT_GT(low.test_failure_rate, 0.0);
  const fault_config high = fault_config::preset("high");
  EXPECT_TRUE(high.enabled);
  EXPECT_GT(high.server_churn_rate, low.server_churn_rate);
  EXPECT_GT(high.test_failure_rate, low.test_failure_rate);
  EXPECT_GT(high.vm_preemption_rate, low.vm_preemption_rate);
  EXPECT_THROW(fault_config::preset("medium"), invalid_argument_error);
}

TEST(FaultsTest, DisabledPlanIsEmpty) {
  const fault_plan plan =
      fault_plan::build(fault_config{}, 42, 4, server_ids(50), week());
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.withdrawal_count(), 0u);
  EXPECT_TRUE(plan.outages().empty());
  EXPECT_FALSE(plan.withdraw_hour(1).has_value());
}

TEST(FaultsTest, BuildIsDeterministic) {
  const fault_config cfg = fault_config::preset("high");
  const fault_plan a = fault_plan::build(cfg, 42, 4, server_ids(200), week());
  const fault_plan b = fault_plan::build(cfg, 42, 4, server_ids(200), week());
  ASSERT_EQ(a.withdrawal_count(), b.withdrawal_count());
  EXPECT_EQ(a.withdrawals(), b.withdrawals());
  ASSERT_EQ(a.outages().size(), b.outages().size());
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].vm_slot, b.outages()[i].vm_slot);
    EXPECT_EQ(a.outages()[i].window.begin_at, b.outages()[i].window.begin_at);
    EXPECT_EQ(a.outages()[i].window.end_at, b.outages()[i].window.end_at);
  }
  // A worker-count change (vm_count fixed) must not be the only thing
  // keeping schedules apart: a different seed gives a different plan.
  const fault_plan c = fault_plan::build(cfg, 43, 4, server_ids(200), week());
  EXPECT_NE(a.withdrawals(), c.withdrawals());
}

TEST(FaultsTest, ChurnDrawsArePerServer) {
  // Removing servers from the list never changes another server's draw.
  const fault_config cfg = fault_config::preset("high");
  const fault_plan full =
      fault_plan::build(cfg, 42, 4, server_ids(200), week());
  std::vector<std::size_t> half = server_ids(200);
  half.resize(100);
  const fault_plan partial = fault_plan::build(cfg, 42, 4, half, week());
  for (const std::size_t sid : half) {
    EXPECT_EQ(full.withdraw_hour(sid), partial.withdraw_hour(sid));
  }
}

TEST(FaultsTest, WithdrawalsSpareTheFirstHour) {
  const fault_config cfg = fault_config::preset("high");
  const fault_plan plan =
      fault_plan::build(cfg, 7, 2, server_ids(400), week());
  ASSERT_GT(plan.withdrawal_count(), 0u);
  for (const auto& [sid, at] : plan.withdrawals()) {
    EXPECT_GT(at, week().begin_at);
    EXPECT_LT(at, week().end_at);
    EXPECT_TRUE(plan.withdrawn_by(sid, at));
    EXPECT_FALSE(plan.withdrawn_by(sid, at + (-1)));
  }
}

TEST(FaultsTest, OutagesStayInsideTheWindow) {
  fault_config cfg = fault_config::preset("high");
  cfg.vm_preemption_rate = 0.05;  // force plenty of windows
  const fault_plan plan =
      fault_plan::build(cfg, 7, 8, server_ids(10), week());
  ASSERT_FALSE(plan.outages().empty());
  for (const vm_outage& o : plan.outages()) {
    EXPECT_LT(o.vm_slot, 8u);
    EXPECT_GE(o.window.begin_at, week().begin_at);
    EXPECT_LE(o.window.end_at, week().end_at);
    EXPECT_LT(o.window.begin_at, o.window.end_at);
  }
}

TEST(FaultsTest, BadOutageBoundsThrow) {
  fault_config cfg = fault_config::preset("low");
  cfg.vm_outage_hours_min = 0;
  EXPECT_THROW(fault_plan::build(cfg, 1, 1, server_ids(5), week()),
               invalid_argument_error);
  cfg.vm_outage_hours_min = 5;
  cfg.vm_outage_hours_max = 2;
  EXPECT_THROW(fault_plan::build(cfg, 1, 1, server_ids(5), week()),
               invalid_argument_error);
}

TEST(FaultsTest, FaultStreamIsCounterBased) {
  const fault_config cfg = fault_config::preset("low");
  const fault_plan plan =
      fault_plan::build(cfg, 42, 4, server_ids(10), week());
  rng a = plan.vm_fault_stream(2, week().begin_at + 5);
  rng b = plan.vm_fault_stream(2, week().begin_at + 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform(), b.uniform());
  // Distinct (slot, hour) pairs get distinct streams.
  rng c = plan.vm_fault_stream(3, week().begin_at + 5);
  rng d = plan.vm_fault_stream(2, week().begin_at + 6);
  EXPECT_NE(a.uniform(), c.uniform());
  EXPECT_NE(a.uniform(), d.uniform());
}

TEST(FaultsTest, OutcomeNames) {
  EXPECT_STREQ(to_string(test_outcome::ok), "ok");
  EXPECT_STREQ(to_string(test_outcome::ok_after_retry), "ok_after_retry");
  EXPECT_STREQ(to_string(test_outcome::failed), "failed");
  EXPECT_STREQ(to_string(test_outcome::server_withdrawn),
               "server_withdrawn");
  EXPECT_STREQ(to_string(test_outcome::vm_down), "vm_down");
  EXPECT_STREQ(to_string(test_outcome::skipped_budget), "skipped_budget");
}

}  // namespace
}  // namespace clasp

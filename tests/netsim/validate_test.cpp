#include "netsim/validate.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

TEST(ValidateTest, GeneratedInternetIsClean) {
  const validation_report report = validate_internet(small_internet());
  for (const validation_issue& issue : report.issues) {
    ADD_FAILURE() << (issue.level == validation_issue::severity::error
                          ? "error: "
                          : "warning: ")
                  << issue.what;
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(ValidateTest, DetectsDuplicateInterfaceAddresses) {
  geo_database geo = geo_database::builtin();
  topology topo(&geo);
  const as_index a = topo.add_as(asn{1}, "A", as_role::transit);
  const city_id la = geo.city_by_name("Los Angeles, CA").id;
  const city_id ny = geo.city_by_name("New York, NY").id;
  const city_id chi = geo.city_by_name("Chicago, IL").id;
  const auto r1 = topo.add_router(a, la, ipv4_addr::parse("10.0.0.1"));
  const auto r2 = topo.add_router(a, ny, ipv4_addr::parse("10.0.0.2"));
  const auto r3 = topo.add_router(a, chi, ipv4_addr::parse("10.0.0.3"));
  // Two links reusing the same interface address.
  topo.add_link(link_kind::backbone, r1, r2, ipv4_addr::parse("10.1.0.0"),
                ipv4_addr::parse("10.1.0.1"), mbps{1000.0}, millis{1.0});
  topo.add_link(link_kind::backbone, r1, r3, ipv4_addr::parse("10.1.0.0"),
                ipv4_addr::parse("10.1.0.3"), mbps{1000.0}, millis{1.0});
  const validation_report report = validate_topology(topo);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) {
    if (issue.what.find("10.1.0.0") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ValidateTest, DetectsBadCapacity) {
  geo_database geo = geo_database::builtin();
  topology topo(&geo);
  const as_index a = topo.add_as(asn{1}, "A", as_role::transit);
  const city_id la = geo.city_by_name("Los Angeles, CA").id;
  const city_id ny = geo.city_by_name("New York, NY").id;
  const auto r1 = topo.add_router(a, la, ipv4_addr::parse("10.0.0.1"));
  const auto r2 = topo.add_router(a, ny, ipv4_addr::parse("10.0.0.2"));
  topo.add_link(link_kind::backbone, r1, r2, ipv4_addr::parse("10.1.0.0"),
                ipv4_addr::parse("10.1.0.1"), mbps{0.0}, millis{1.0});
  const validation_report report = validate_topology(topo);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateTest, WarnsOnForeignPrefixAnchor) {
  geo_database geo = geo_database::builtin();
  topology topo(&geo);
  const as_index a = topo.add_as(asn{1}, "A", as_role::hosting);
  const city_id la = geo.city_by_name("Los Angeles, CA").id;
  const city_id tokyo = geo.city_by_name("Tokyo").id;
  topo.add_router(a, la, ipv4_addr::parse("10.0.0.1"));
  topo.announce_prefix(a, ipv4_prefix::parse("10.2.0.0/16"), tokyo);
  const validation_report report = validate_topology(topo);
  EXPECT_TRUE(report.ok());  // warning only
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(ValidateTest, DetectsCrossAsPrefixOverlap) {
  geo_database geo = geo_database::builtin();
  topology topo(&geo);
  const as_index a = topo.add_as(asn{1}, "A", as_role::hosting);
  const as_index b = topo.add_as(asn{2}, "B", as_role::hosting);
  const city_id la = geo.city_by_name("Los Angeles, CA").id;
  const city_id ny = geo.city_by_name("New York, NY").id;
  topo.add_router(a, la, ipv4_addr::parse("10.0.0.1"));
  topo.add_router(b, ny, ipv4_addr::parse("10.0.0.2"));
  topo.announce_prefix(a, ipv4_prefix::parse("20.0.0.0/8"), la);
  topo.announce_prefix(b, ipv4_prefix::parse("20.5.0.0/16"), ny);
  const validation_report report = validate_topology(topo);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateTest, EmptyTopologyIsValid) {
  geo_database geo = geo_database::builtin();
  topology topo(&geo);
  EXPECT_TRUE(validate_topology(topo).ok());
}

}  // namespace
}  // namespace clasp

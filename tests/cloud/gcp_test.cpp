#include "cloud/gcp.hpp"

#include <gtest/gtest.h>

#include "netsim/generator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet_config;

class GcpTest : public ::testing::Test {
 protected:
  GcpTest()
      : net_(generate_internet(small_internet_config())),
        planner_(&net_),
        cloud_(&net_, &planner_) {}

  internet net_;
  route_planner planner_;
  gcp_cloud cloud_;
};

TEST(GcpStaticTest, RegionTableMatchesPaper) {
  const auto& regions = gcp_regions();
  EXPECT_EQ(regions.size(), 7u);
  EXPECT_EQ(region_by_name("us-west1").city_name, "The Dalles, OR");
  EXPECT_EQ(region_by_name("europe-west1").city_name, "St. Ghislain");
  EXPECT_THROW(region_by_name("mars-north1"), not_found_error);
}

TEST(GcpStaticTest, MachineTypesMatchPaper) {
  const machine_type& n1 = machine_type_by_name("n1-standard-2");
  EXPECT_EQ(n1.vcpus, 2u);
  EXPECT_NEAR(n1.memory_gb, 7.5, 0.1);
  EXPECT_DOUBLE_EQ(n1.max_egress.value, 10000.0);
  EXPECT_NO_THROW(machine_type_by_name("n2-standard-2"));
  EXPECT_THROW(machine_type_by_name("z9-mega"), not_found_error);
}

TEST(GcpStaticTest, EgressPricing) {
  EXPECT_GT(egress_usd_per_gb(service_tier::premium),
            egress_usd_per_gb(service_tier::standard));
}

TEST_F(GcpTest, NullDependenciesRejected) {
  EXPECT_THROW(gcp_cloud(nullptr, &planner_), invalid_argument_error);
  EXPECT_THROW(gcp_cloud(&net_, nullptr), invalid_argument_error);
}

TEST_F(GcpTest, CreateVmAttachesHostInRegionCity) {
  const auto id = cloud_.create_vm("us-east1", service_tier::premium);
  const vm_instance& vm = cloud_.vm(id);
  EXPECT_TRUE(vm.running);
  EXPECT_EQ(vm.region, "us-east1");
  EXPECT_EQ(vm.tier, service_tier::premium);
  const host_info& host = net_.topo->host_at(vm.host);
  EXPECT_EQ(host.owner, net_.cloud);
  EXPECT_EQ(host.city, cloud_.region_city("us-east1"));
  // Default tc shaping from the paper.
  EXPECT_DOUBLE_EQ(vm.shaping.downlink.value, 1000.0);
  EXPECT_DOUBLE_EQ(vm.shaping.uplink.value, 100.0);
}

TEST_F(GcpTest, ZonesRoundRobin) {
  const auto a = cloud_.create_vm("us-west1", service_tier::premium);
  const auto b = cloud_.create_vm("us-west1", service_tier::premium);
  const auto c = cloud_.create_vm("us-west1", service_tier::premium);
  const auto d = cloud_.create_vm("us-west1", service_tier::premium);
  EXPECT_EQ(cloud_.vm(a).zone, 0u);
  EXPECT_EQ(cloud_.vm(b).zone, 1u);
  EXPECT_EQ(cloud_.vm(c).zone, 2u);
  EXPECT_EQ(cloud_.vm(d).zone, 0u);
}

TEST_F(GcpTest, VmIdsAreUnique) {
  const auto a = cloud_.create_vm("us-west1", service_tier::premium);
  const auto b = cloud_.create_vm("us-west1", service_tier::standard);
  EXPECT_NE(cloud_.vm(a).id, cloud_.vm(b).id);
}

TEST_F(GcpTest, TerminateLifecycle) {
  const auto id = cloud_.create_vm("us-central1", service_tier::standard);
  cloud_.terminate_vm(id);
  EXPECT_FALSE(cloud_.vm(id).running);
  EXPECT_THROW(cloud_.terminate_vm(id), state_error);
  EXPECT_THROW(cloud_.charge_vm_hour(id), state_error);
}

TEST_F(GcpTest, UnknownLookupsThrow) {
  EXPECT_THROW(cloud_.create_vm("nowhere", service_tier::premium),
               not_found_error);
  EXPECT_THROW(cloud_.create_vm("us-east1", service_tier::premium, "bogus"),
               not_found_error);
  EXPECT_THROW(cloud_.vm(999), not_found_error);
}

TEST_F(GcpTest, BillingAccumulates) {
  const auto id = cloud_.create_vm("us-east1", service_tier::premium);
  cloud_.charge_vm_hour(id);
  cloud_.charge_vm_hour(id);
  cloud_.charge_egress(service_tier::premium, megabytes{1024.0});
  cloud_.charge_storage_month(10.0);
  const cost_report& costs = cloud_.costs();
  EXPECT_NEAR(costs.vm_usd, 2 * 0.095, 1e-9);
  EXPECT_NEAR(costs.egress_usd, 0.12, 1e-9);
  EXPECT_NEAR(costs.storage_usd, 0.20, 1e-9);
  EXPECT_NEAR(costs.total(), costs.vm_usd + costs.egress_usd + costs.storage_usd,
              1e-12);
  EXPECT_DOUBLE_EQ(cloud_.vm(id).hours_run, 2.0);
}

TEST_F(GcpTest, BucketAccumulates) {
  storage_bucket& bucket = cloud_.bucket("us-east1");
  bucket.put("raw/1.tar.gz", 5.0);
  bucket.put("raw/2.tar.gz", 7.5);
  EXPECT_DOUBLE_EQ(bucket.total_megabytes(), 12.5);
  EXPECT_EQ(bucket.object_count(), 2u);
  EXPECT_EQ(bucket.name(), "clasp-data-us-east1");
  EXPECT_THROW(bucket.put("x", -1.0), invalid_argument_error);
  // Same region returns the same bucket.
  EXPECT_DOUBLE_EQ(cloud_.bucket("us-east1").total_megabytes(), 12.5);
}

TEST_F(GcpTest, VmEndpointUsable) {
  const auto id = cloud_.create_vm("europe-west1", service_tier::standard);
  const endpoint e = cloud_.vm_endpoint(id);
  EXPECT_EQ(e.owner, net_.cloud);
  EXPECT_TRUE(e.host.has_value());
  EXPECT_EQ(e.city, cloud_.region_city("europe-west1"));
}

TEST_F(GcpTest, RegionPoliciesInstalledInPlanner) {
  // The constructor pushes each region's policy into the planner.
  const egress_policy p =
      planner_.region_policy(cloud_.region_city("us-east4"));
  EXPECT_NEAR(p.concentration, region_by_name("us-east4").policy.concentration,
              1e-12);
}

}  // namespace
}  // namespace clasp
// Appended: sustained-use discount.
namespace clasp {
namespace {

TEST_F(GcpTest, SustainedUseDiscountKicksInMidMonth) {
  const auto id = cloud_.create_vm("us-west4", service_tier::premium);
  // First 365 hours at list price.
  for (int i = 0; i < 365; ++i) cloud_.charge_vm_hour(id);
  const double list_phase = cloud_.costs().vm_usd;
  EXPECT_NEAR(list_phase, 365 * 0.095, 1e-6);
  // The second half of the month bills at 70%.
  for (int i = 0; i < 100; ++i) cloud_.charge_vm_hour(id);
  EXPECT_NEAR(cloud_.costs().vm_usd - list_phase, 100 * 0.095 * 0.70, 1e-6);
}

}  // namespace
}  // namespace clasp

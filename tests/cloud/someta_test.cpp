#include "cloud/someta.hpp"

#include <gtest/gtest.h>

namespace clasp {
namespace {

TEST(SometaTest, GigabitTestFitsOnNStandard2) {
  // The paper's claim: n1-standard-2 handles a 1 Gbps test without
  // depleting the CPU.
  const machine_type& n1 = machine_type_by_name("n1-standard-2");
  rng r(1);
  someta_recorder recorder(n1);
  for (int i = 0; i < 500; ++i) {
    recorder.record(mbps{950.0}, hour_stamp{i}, r);
  }
  EXPECT_DOUBLE_EQ(recorder.saturation_fraction(), 0.0);
  EXPECT_LT(recorder.peak_cpu(), 0.6);
}

TEST(SometaTest, CpuScalesWithThroughput) {
  const machine_type& n1 = machine_type_by_name("n1-standard-2");
  rng r1(2), r2(2);
  const auto slow = record_test_metadata(n1, mbps{50.0}, hour_stamp{0}, r1);
  const auto fast = record_test_metadata(n1, mbps{950.0}, hour_stamp{0}, r2);
  EXPECT_GT(fast.cpu_utilization, slow.cpu_utilization);
}

TEST(SometaTest, SampleFieldsPlausible) {
  const machine_type& n1 = machine_type_by_name("n1-standard-2");
  rng r(3);
  for (int i = 0; i < 200; ++i) {
    const auto s = record_test_metadata(n1, mbps{r.uniform(10, 1000)},
                                        hour_stamp{i}, r);
    EXPECT_GE(s.cpu_utilization, 0.0);
    EXPECT_LE(s.cpu_utilization, 1.0);
    EXPECT_GT(s.memory_gb, 1.0);
    EXPECT_LT(s.memory_gb, n1.memory_gb);
    EXPECT_GE(s.io_wait, 0.0);
    EXPECT_LE(s.io_wait, 0.2);
  }
}

TEST(SometaTest, SingleCoreMachineWouldSaturate) {
  // A hypothetical 1-vCPU machine at 10 Gbps clearly saturates — the
  // degradation the paper's VM sizing avoided.
  machine_type tiny{"tiny-1", 1, 1.0, mbps::from_gbps(10.0), 0.01};
  rng r(4);
  someta_recorder recorder(tiny);
  for (int i = 0; i < 100; ++i) {
    recorder.record(mbps{9500.0}, hour_stamp{i}, r);
  }
  EXPECT_GT(recorder.saturation_fraction(), 0.9);
}

TEST(SometaTest, RecorderAccumulates) {
  someta_recorder recorder(machine_type_by_name("n2-standard-2"));
  rng r(5);
  EXPECT_DOUBLE_EQ(recorder.saturation_fraction(), 0.0);  // empty
  recorder.record(mbps{100.0}, hour_stamp{1}, r);
  recorder.record(mbps{200.0}, hour_stamp{2}, r);
  EXPECT_EQ(recorder.samples().size(), 2u);
  EXPECT_EQ(recorder.samples()[1].at, hour_stamp{2});
}

}  // namespace
}  // namespace clasp

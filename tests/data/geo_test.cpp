#include "data/geo.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

TEST(GeoTest, BuiltinHasExpectedCities) {
  const geo_database db = geo_database::builtin();
  EXPECT_GT(db.size(), 100u);
  // Every GCP region host city must exist.
  for (const char* name :
       {"The Dalles, OR", "Los Angeles, CA", "Las Vegas, NV",
        "Moncks Corner, SC", "Ashburn, VA", "Council Bluffs, IA",
        "St. Ghislain"}) {
    EXPECT_TRUE(db.has_city(name)) << name;
  }
  // The paper's differential destinations.
  for (const char* name : {"Mumbai", "Sydney", "Brussels"}) {
    EXPECT_TRUE(db.has_city(name)) << name;
  }
}

TEST(GeoTest, CityLookupByIdAndName) {
  const geo_database db = geo_database::builtin();
  const city_info& la = db.city_by_name("Los Angeles, CA");
  EXPECT_EQ(db.city(la.id).name, "Los Angeles, CA");
  EXPECT_EQ(la.country, "US");
  EXPECT_EQ(la.tz.hours_east_of_utc, -8);
}

TEST(GeoTest, UnknownLookupsThrow) {
  const geo_database db = geo_database::builtin();
  EXPECT_THROW(db.city_by_name("Atlantis"), not_found_error);
  EXPECT_THROW(db.city(city_id{999999}), not_found_error);
  EXPECT_FALSE(db.has_city("Atlantis"));
}

TEST(GeoTest, CountryFilter) {
  const geo_database db = geo_database::builtin();
  const auto us = db.cities_in_country("US");
  const auto in = db.cities_in_country("IN");
  EXPECT_GT(us.size(), 50u);
  EXPECT_GE(in.size(), 5u);
  for (const city_id c : in) EXPECT_EQ(db.city(c).country, "IN");
}

TEST(GeoTest, IdsAreDense) {
  const geo_database db = geo_database::builtin();
  for (std::uint32_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.city(city_id{i}).id.value, i);
  }
}

TEST(GeoTest, HaversineKnownDistance) {
  const geo_database db = geo_database::builtin();
  const double d = haversine_km(db.city_by_name("Los Angeles, CA"),
                                db.city_by_name("New York, NY"));
  EXPECT_NEAR(d, 3940.0, 60.0);  // great-circle LA-NYC
}

TEST(GeoTest, HaversineSymmetricAndZero) {
  const geo_database db = geo_database::builtin();
  const city_info& a = db.city_by_name("Chicago, IL");
  const city_info& b = db.city_by_name("Miami, FL");
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
  EXPECT_DOUBLE_EQ(haversine_km(a, a), 0.0);
}

TEST(GeoTest, PropagationDelayScalesWithDistance) {
  const geo_database db = geo_database::builtin();
  const millis near = propagation_delay(db.city_by_name("San Jose, CA"),
                                        db.city_by_name("San Francisco, CA"));
  const millis far = propagation_delay(db.city_by_name("San Jose, CA"),
                                       db.city_by_name("New York, NY"));
  EXPECT_LT(near.value, far.value);
  // Coast-to-coast one-way fiber delay should be ~20-35 ms.
  EXPECT_GT(far.value, 15.0);
  EXPECT_LT(far.value, 40.0);
}

TEST(GeoTest, PopulationWeightsPositive) {
  const geo_database db = geo_database::builtin();
  for (const city_info& c : db.cities()) {
    EXPECT_GT(c.population_weight, 0.0) << c.name;
  }
}

TEST(GeoTest, TimezonesPlausible) {
  const geo_database db = geo_database::builtin();
  for (const city_info& c : db.cities()) {
    EXPECT_GE(c.tz.hours_east_of_utc, -12) << c.name;
    EXPECT_LE(c.tz.hours_east_of_utc, 14) << c.name;
  }
  EXPECT_EQ(db.city_by_name("Mumbai").tz.hours_east_of_utc, 5);
  EXPECT_EQ(db.city_by_name("Sydney").tz.hours_east_of_utc, 10);
}

}  // namespace
}  // namespace clasp

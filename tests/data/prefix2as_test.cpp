#include "data/prefix2as.hpp"

#include <gtest/gtest.h>

namespace clasp {
namespace {

TEST(Prefix2AsTest, LongestPrefixWins) {
  prefix2as_table table;
  table.add(ipv4_prefix::parse("10.0.0.0/8"), asn{100});
  table.add(ipv4_prefix::parse("10.1.0.0/16"), asn{200});
  table.add(ipv4_prefix::parse("10.1.2.0/24"), asn{300});

  EXPECT_EQ(table.lookup(ipv4_addr::parse("10.9.9.9"))->value, 100u);
  EXPECT_EQ(table.lookup(ipv4_addr::parse("10.1.9.9"))->value, 200u);
  EXPECT_EQ(table.lookup(ipv4_addr::parse("10.1.2.9"))->value, 300u);
}

TEST(Prefix2AsTest, UnroutedReturnsNullopt) {
  prefix2as_table table;
  table.add(ipv4_prefix::parse("10.0.0.0/8"), asn{100});
  EXPECT_FALSE(table.lookup(ipv4_addr::parse("11.0.0.1")).has_value());
}

TEST(Prefix2AsTest, ReinsertOverwrites) {
  prefix2as_table table;
  table.add(ipv4_prefix::parse("10.0.0.0/8"), asn{100});
  table.add(ipv4_prefix::parse("10.0.0.0/8"), asn{999});
  EXPECT_EQ(table.lookup(ipv4_addr::parse("10.0.0.1"))->value, 999u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(Prefix2AsTest, DefaultRoute) {
  prefix2as_table table;
  table.add(ipv4_prefix::parse("0.0.0.0/0"), asn{1});
  table.add(ipv4_prefix::parse("8.0.0.0/8"), asn{2});
  EXPECT_EQ(table.lookup(ipv4_addr::parse("9.9.9.9"))->value, 1u);
  EXPECT_EQ(table.lookup(ipv4_addr::parse("8.8.8.8"))->value, 2u);
}

TEST(Prefix2AsTest, EntriesEnumerable) {
  prefix2as_table table;
  table.add(ipv4_prefix::parse("10.0.0.0/8"), asn{100});
  table.add(ipv4_prefix::parse("20.0.0.0/8"), asn{200});
  const auto entries = table.entries();
  EXPECT_EQ(entries.size(), 2u);
}

TEST(Prefix2AsTest, Slash32Host) {
  prefix2as_table table;
  table.add(ipv4_prefix::parse("1.2.3.4/32"), asn{7});
  EXPECT_EQ(table.lookup(ipv4_addr::parse("1.2.3.4"))->value, 7u);
  EXPECT_FALSE(table.lookup(ipv4_addr::parse("1.2.3.5")).has_value());
}

}  // namespace
}  // namespace clasp

#include "data/ipv4.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {
namespace {

TEST(Ipv4AddrTest, ParseAndToString) {
  const ipv4_addr a = ipv4_addr::parse("192.168.1.42");
  EXPECT_EQ(a.value(), 0xC0A8012Au);
  EXPECT_EQ(a.to_string(), "192.168.1.42");
}

TEST(Ipv4AddrTest, BoundaryValues) {
  EXPECT_EQ(ipv4_addr::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(ipv4_addr::parse("255.255.255.255").value(), 0xFFFFFFFFu);
}

TEST(Ipv4AddrTest, ParseErrors) {
  EXPECT_THROW(ipv4_addr::parse("1.2.3"), invalid_argument_error);
  EXPECT_THROW(ipv4_addr::parse("1.2.3.4.5"), invalid_argument_error);
  EXPECT_THROW(ipv4_addr::parse("1.2.3.256"), invalid_argument_error);
  EXPECT_THROW(ipv4_addr::parse("a.b.c.d"), invalid_argument_error);
  EXPECT_THROW(ipv4_addr::parse("1..2.3"), invalid_argument_error);
}

TEST(Ipv4AddrTest, RoundTripProperty) {
  rng r(1);
  for (int i = 0; i < 500; ++i) {
    const ipv4_addr a{static_cast<std::uint32_t>(r())};
    EXPECT_EQ(ipv4_addr::parse(a.to_string()), a);
  }
}

TEST(Ipv4PrefixTest, BasicProperties) {
  const ipv4_prefix p = ipv4_prefix::parse("10.0.0.0/8");
  EXPECT_EQ(p.length(), 8u);
  EXPECT_EQ(p.size(), 1u << 24);
  EXPECT_EQ(p.netmask(), 0xFF000000u);
  EXPECT_EQ(p.to_string(), "10.0.0.0/8");
}

TEST(Ipv4PrefixTest, Contains) {
  const ipv4_prefix p = ipv4_prefix::parse("192.168.0.0/16");
  EXPECT_TRUE(p.contains(ipv4_addr::parse("192.168.255.1")));
  EXPECT_FALSE(p.contains(ipv4_addr::parse("192.169.0.1")));
}

TEST(Ipv4PrefixTest, Slash32AndSlash0) {
  const ipv4_prefix host = ipv4_prefix::parse("1.2.3.4/32");
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.contains(ipv4_addr::parse("1.2.3.4")));
  const ipv4_prefix all = ipv4_prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(ipv4_addr::parse("200.200.200.200")));
}

TEST(Ipv4PrefixTest, AddressAt) {
  const ipv4_prefix p = ipv4_prefix::parse("10.0.0.0/30");
  EXPECT_EQ(p.address_at(0).to_string(), "10.0.0.0");
  EXPECT_EQ(p.address_at(3).to_string(), "10.0.0.3");
  EXPECT_THROW(p.address_at(4), invalid_argument_error);
}

TEST(Ipv4PrefixTest, RejectsHostBits) {
  EXPECT_THROW(ipv4_prefix(ipv4_addr::parse("10.0.0.1"), 24),
               invalid_argument_error);
  EXPECT_THROW(ipv4_prefix(ipv4_addr::parse("10.0.0.0"), 33),
               invalid_argument_error);
}

TEST(PrefixAllocatorTest, SequentialNonOverlapping) {
  prefix_allocator alloc(ipv4_prefix::parse("10.0.0.0/16"));
  const ipv4_prefix a = alloc.allocate(24);
  const ipv4_prefix b = alloc.allocate(24);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.contains(b.base()));
  EXPECT_FALSE(b.contains(a.base()));
}

TEST(PrefixAllocatorTest, AlignsMixedSizes) {
  prefix_allocator alloc(ipv4_prefix::parse("10.0.0.0/16"));
  const ipv4_prefix small = alloc.allocate(26);  // 64 addresses
  const ipv4_prefix big = alloc.allocate(24);    // must align to /24
  EXPECT_EQ(big.base().value() % 256, 0u);
  EXPECT_FALSE(big.contains(small.base()));
}

TEST(PrefixAllocatorTest, ExhaustionThrows) {
  prefix_allocator alloc(ipv4_prefix::parse("10.0.0.0/30"));
  (void)alloc.allocate(31);
  (void)alloc.allocate(31);
  EXPECT_THROW(alloc.allocate(31), state_error);
}

TEST(PrefixAllocatorTest, RejectsOversizedRequest) {
  prefix_allocator alloc(ipv4_prefix::parse("10.0.0.0/24"));
  EXPECT_THROW(alloc.allocate(16), invalid_argument_error);
}

TEST(PrefixAllocatorTest, RemainingDecreases) {
  prefix_allocator alloc(ipv4_prefix::parse("10.0.0.0/24"));
  EXPECT_EQ(alloc.remaining(), 256u);
  (void)alloc.allocate(26);
  EXPECT_EQ(alloc.remaining(), 192u);
}

// Property: many allocations from one pool never overlap pairwise.
TEST(PrefixAllocatorTest, ManyAllocationsDisjoint) {
  prefix_allocator alloc(ipv4_prefix::parse("10.0.0.0/12"));
  rng r(2);
  std::vector<ipv4_prefix> allocated;
  for (int i = 0; i < 200; ++i) {
    allocated.push_back(
        alloc.allocate(22 + static_cast<unsigned>(r.uniform_int(0, 4))));
  }
  for (std::size_t i = 0; i < allocated.size(); ++i) {
    for (std::size_t j = i + 1; j < allocated.size(); ++j) {
      EXPECT_FALSE(allocated[i].contains(allocated[j].base()))
          << allocated[i].to_string() << " overlaps "
          << allocated[j].to_string();
    }
  }
}

}  // namespace
}  // namespace clasp

#include "data/ipinfo.hpp"

#include <gtest/gtest.h>

namespace clasp {
namespace {

TEST(IpinfoTest, RegisterAndLookup) {
  ipinfo_database db;
  db.add(asn{22773}, business_type::isp, "Cox");
  EXPECT_EQ(db.type_of(asn{22773}), business_type::isp);
  EXPECT_EQ(db.company_of(asn{22773}).value_or(""), "Cox");
  EXPECT_EQ(db.size(), 1u);
}

TEST(IpinfoTest, UnknownForMissing) {
  ipinfo_database db;
  EXPECT_EQ(db.type_of(asn{12345}), business_type::unknown);
  EXPECT_FALSE(db.company_of(asn{12345}).has_value());
}

TEST(IpinfoTest, ReRegisterOverwrites) {
  ipinfo_database db;
  db.add(asn{1}, business_type::hosting, "A");
  db.add(asn{1}, business_type::education, "B");
  EXPECT_EQ(db.type_of(asn{1}), business_type::education);
  EXPECT_EQ(db.company_of(asn{1}).value_or(""), "B");
  EXPECT_EQ(db.size(), 1u);
}

TEST(IpinfoTest, TypeNames) {
  EXPECT_EQ(to_string(business_type::isp), "ISP");
  EXPECT_EQ(to_string(business_type::hosting), "Hosting");
  EXPECT_EQ(to_string(business_type::business), "Business");
  EXPECT_EQ(to_string(business_type::education), "Education");
  EXPECT_EQ(to_string(business_type::unknown), "Unknown");
}

}  // namespace
}  // namespace clasp

#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace clasp {
namespace {

TEST(StringsTest, SplitBasics) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, JoinRoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "-"), "x-y-z");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-ws"), "no-ws");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(5.0, 0), "5");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("us-west1", "us-"));
  EXPECT_FALSE(starts_with("us", "us-"));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("Ookla M-Lab"), "ookla m-lab");
}

TEST(StringsTest, SparklineScalesToRange) {
  const std::string s = sparkline({0.0, 0.5, 1.0});
  EXPECT_EQ(s, "\u2581\u2584\u2588");
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("internet.seeed", "internet.seed"), 1u);
  EXPECT_EQ(edit_distance("faults.enable", "faults.enabled"), 1u);
  // Symmetric.
  EXPECT_EQ(edit_distance("flaw", "lawn"), edit_distance("lawn", "flaw"));
}

TEST(StringsTest, SparklineEdgeCases) {
  EXPECT_EQ(sparkline({}), "");
  EXPECT_EQ(sparkline({7.0, 7.0, 7.0}),
            "\u2581\u2581\u2581");  // constant -> lowest level
  EXPECT_EQ(sparkline({42.0}), "\u2581");
}

}  // namespace
}  // namespace clasp

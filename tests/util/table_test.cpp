#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace clasp {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  text_table t({"Region", "Links"});
  t.add_row({"us-west1", "5293"});
  t.add_row({"us-east4", "5255"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Region"), std::string::npos);
  EXPECT_NE(out.find("us-west1"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTableTest, CsvOutput) {
  text_table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(text_table({}), invalid_argument_error);
}

TEST(TextTableTest, RejectsRowWidthMismatch) {
  text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), invalid_argument_error);
}

TEST(TextTableTest, PrintWritesToStream) {
  text_table t({"x"});
  t.add_row({"y"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(SeriesWriterTest, EmitsHeaderRowsAndFooter) {
  std::ostringstream os;
  {
    series_writer w(os, "fig2a", {"H", "fraction"});
    w.add({0.5, 0.25});
    w.add({0.6, 0.10});
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("# series: fig2a H fraction"), std::string::npos);
  EXPECT_NE(out.find("0.5000 0.2500"), std::string::npos);
  EXPECT_NE(out.find("# end series"), std::string::npos);
}

}  // namespace
}  // namespace clasp

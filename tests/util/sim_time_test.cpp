#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace clasp {
namespace {

TEST(CivilDateTest, EpochIsDayZero) {
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
}

TEST(CivilDateTest, KnownDates) {
  EXPECT_EQ(days_from_civil({2020, 1, 1}), 18262);
  EXPECT_EQ(days_from_civil({2020, 3, 1}), 18322);  // 2020 is a leap year
  EXPECT_EQ(days_from_civil({2020, 12, 31}), 18627);
}

TEST(CivilDateTest, RoundTripAcrossYears) {
  for (std::int64_t day = 17000; day < 20000; ++day) {
    EXPECT_EQ(days_from_civil(civil_from_days(day)), day);
  }
}

TEST(CivilDateTest, LeapDayExists) {
  const civil_date leap = civil_from_days(days_from_civil({2020, 2, 29}));
  EXPECT_EQ(leap.year, 2020);
  EXPECT_EQ(leap.month, 2u);
  EXPECT_EQ(leap.day, 29u);
}

TEST(HourStampTest, EpochProperties) {
  const hour_stamp t = hour_stamp::from_civil({2020, 1, 1}, 0);
  EXPECT_EQ(t.hours_since_epoch(), 0);
  EXPECT_EQ(t.utc_day_index(), 0);
  EXPECT_EQ(t.utc_hour_of_day(), 0u);
}

TEST(HourStampTest, FromCivilAndBack) {
  const hour_stamp t = hour_stamp::from_civil({2020, 5, 17}, 13);
  EXPECT_EQ(t.utc_hour_of_day(), 13u);
  const civil_date d = t.utc_date();
  EXPECT_EQ(d.year, 2020);
  EXPECT_EQ(d.month, 5u);
  EXPECT_EQ(d.day, 17u);
}

TEST(HourStampTest, Arithmetic) {
  const hour_stamp t = hour_stamp::from_civil({2020, 5, 1}, 0);
  const hour_stamp u = t + 25;
  EXPECT_EQ(u - t, 25);
  EXPECT_EQ(u.utc_hour_of_day(), 1u);
  EXPECT_EQ(u.utc_day_index(), t.utc_day_index() + 1);
}

TEST(HourStampTest, IncrementIsOneHour) {
  hour_stamp t = hour_stamp::from_civil({2020, 5, 1}, 23);
  ++t;
  EXPECT_EQ(t.utc_hour_of_day(), 0u);
  EXPECT_EQ(t.utc_date().day, 2u);
}

TEST(HourStampTest, LocalHourWestOfUtc) {
  // 02:00 UTC is 18:00 the previous day in UTC-8.
  const hour_stamp t = hour_stamp::from_civil({2020, 5, 2}, 2);
  const timezone_offset pacific{-8};
  EXPECT_EQ(t.local_hour_of_day(pacific), 18u);
  EXPECT_EQ(t.local_day_index(pacific), t.utc_day_index() - 1);
}

TEST(HourStampTest, LocalHourEastOfUtc) {
  // 22:00 UTC is 03:30 next day in UTC+5 (we use whole hours: 03:00 at +5).
  const hour_stamp t = hour_stamp::from_civil({2020, 5, 2}, 22);
  const timezone_offset india{5};
  EXPECT_EQ(t.local_hour_of_day(india), 3u);
  EXPECT_EQ(t.local_day_index(india), t.utc_day_index() + 1);
}

TEST(HourStampTest, LocalTimeIdentityAtUtc) {
  const hour_stamp t = hour_stamp::from_civil({2020, 8, 15}, 7);
  EXPECT_EQ(t.local_hour_of_day(timezone_offset{0}), t.utc_hour_of_day());
}

TEST(HourStampTest, NegativeHoursBeforeEpoch) {
  const hour_stamp t = hour_stamp::from_civil({2019, 12, 31}, 23);
  EXPECT_EQ(t.hours_since_epoch(), -1);
  EXPECT_EQ(t.utc_hour_of_day(), 23u);
  EXPECT_EQ(t.utc_day_index(), -1);
}

TEST(HourStampTest, ToStringFormat) {
  const hour_stamp t = hour_stamp::from_civil({2020, 9, 3}, 5);
  EXPECT_EQ(t.to_string(), "2020-09-03 05:00Z");
}

TEST(CampaignWindowTest, TopologyWindowIsFiveMonths) {
  const hour_range w = topology_campaign_window();
  EXPECT_EQ(w.begin_at, hour_stamp::from_civil({2020, 5, 1}, 0));
  // May(31) + Jun(30) + Jul(31) + Aug(31) + Sep(30) = 153 days.
  EXPECT_EQ(w.count(), 153 * 24);
}

TEST(CampaignWindowTest, DifferentialWindowIsTwoMonths) {
  const hour_range w = differential_campaign_window();
  EXPECT_EQ(w.count(), (31 + 30) * 24);
  EXPECT_EQ(w.end_at, topology_campaign_window().end_at);
}

}  // namespace
}  // namespace clasp

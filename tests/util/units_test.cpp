#include "util/units.hpp"

#include <gtest/gtest.h>

namespace clasp {
namespace {

TEST(UnitsTest, MbpsConversions) {
  const mbps rate{100.0};
  EXPECT_DOUBLE_EQ(rate.bits_per_second(), 1e8);
  EXPECT_DOUBLE_EQ(rate.bytes_per_second(), 1.25e7);
  EXPECT_DOUBLE_EQ(mbps::from_gbps(1.0).value, 1000.0);
}

TEST(UnitsTest, MbpsArithmetic) {
  const mbps a{100.0}, b{50.0};
  EXPECT_DOUBLE_EQ((a + b).value, 150.0);
  EXPECT_DOUBLE_EQ((a - b).value, 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value, 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value, 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_LT(b, a);
}

TEST(UnitsTest, MillisConversions) {
  EXPECT_DOUBLE_EQ(millis{250.0}.seconds(), 0.25);
  EXPECT_DOUBLE_EQ(millis::from_seconds(1.5).value, 1500.0);
}

TEST(UnitsTest, TransferVolume) {
  // 100 Mbps for 15 s = 187.5 MB.
  const megabytes v = transfer_volume(mbps{100.0}, 15.0);
  EXPECT_NEAR(v.value, 187.5, 1e-9);
  EXPECT_NEAR(v.gigabytes(), 187.5 / 1024.0, 1e-9);
}

TEST(UnitsTest, Comparisons) {
  EXPECT_TRUE(millis{1.0} < millis{2.0});
  EXPECT_TRUE(megabytes{5.0} == megabytes{5.0});
}

}  // namespace
}  // namespace clasp

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace clasp {
namespace {

TEST(RngTest, SameSeedSameStream) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  rng a(42), b(43);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  rng parent(7);
  rng c1 = parent.fork("topology");
  rng parent2(7);
  rng c2 = parent2.fork("topology");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1(), c2());
}

TEST(RngTest, ForkTagsDecorrelate) {
  rng parent(7);
  rng a = parent.fork("alpha");
  rng b = parent.fork("beta");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkedChildIndependentOfParentDrawCount) {
  // A child forked from a fresh parent must not change when the parent has
  // made intermediate draws with a *different* state... forks depend on
  // parent state by design, so equal parent states give equal children.
  rng p1(9), p2(9);
  (void)p1();
  (void)p2();
  rng c1 = p1.fork("x");
  rng c2 = p2.fork("x");
  EXPECT_EQ(c1(), c2());
}

TEST(RngTest, UniformInUnitInterval) {
  rng r(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  rng r(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  rng r(3);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  rng r(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntSingleValue) {
  rng r(5);
  EXPECT_EQ(r.uniform_int(17, 17), 17);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  rng r(6);
  EXPECT_THROW(r.uniform_int(2, 1), invalid_argument_error);
}

TEST(RngTest, BernoulliEdgeCases) {
  rng r(7);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-0.5));
  EXPECT_TRUE(r.bernoulli(1.5));
}

TEST(RngTest, BernoulliFrequency) {
  rng r(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  rng r(9);
  std::vector<double> xs(100000);
  for (double& x : xs) x = r.normal(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(sample_stddev(xs), 2.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  rng r(10);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  rng r(11);
  std::vector<double> xs(100000);
  for (double& x : xs) x = r.exponential(4.0);
  EXPECT_NEAR(mean(xs), 0.25, 0.01);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  rng r(12);
  EXPECT_THROW(r.exponential(0.0), invalid_argument_error);
  EXPECT_THROW(r.exponential(-1.0), invalid_argument_error);
}

TEST(RngTest, ParetoStaysInBounds) {
  rng r(13);
  for (int i = 0; i < 5000; ++i) {
    const double x = r.pareto(1.0, 100.0, 1.2);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(RngTest, ParetoRejectsBadParams) {
  rng r(14);
  EXPECT_THROW(r.pareto(0.0, 10.0, 1.0), invalid_argument_error);
  EXPECT_THROW(r.pareto(5.0, 5.0, 1.0), invalid_argument_error);
  EXPECT_THROW(r.pareto(1.0, 10.0, 0.0), invalid_argument_error);
}

TEST(RngTest, ZipfRankWithinBounds) {
  rng r(15);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t k = r.zipf(50, 1.1);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 50u);
  }
}

TEST(RngTest, ZipfFavorsLowRanks) {
  rng r(16);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = r.zipf(100, 1.3);
    if (k <= 10) ++low;
    if (k > 50) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ZipfRejectsZeroN) {
  rng r(17);
  EXPECT_THROW(r.zipf(0, 1.0), invalid_argument_error);
}

TEST(RngTest, ShuffleIsPermutation) {
  rng r(18);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  r.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  rng r(19);
  const auto idx = r.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesRejectsOversample) {
  rng r(20);
  EXPECT_THROW(r.sample_indices(5, 6), invalid_argument_error);
}

TEST(RngTest, HashTagIsStable) {
  EXPECT_EQ(hash_tag(1, "abc"), hash_tag(1, "abc"));
  EXPECT_NE(hash_tag(1, "abc"), hash_tag(2, "abc"));
  EXPECT_NE(hash_tag(1, "abc"), hash_tag(1, "abd"));
}

}  // namespace
}  // namespace clasp

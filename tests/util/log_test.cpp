#include "util/log.hpp"

#include <gtest/gtest.h>

namespace clasp {
namespace {

// The logger writes to stderr; these tests cover level gating semantics,
// which is the part callers depend on.
class LogTest : public ::testing::Test {
 protected:
  LogTest() : saved_(get_log_level()) {}
  ~LogTest() override { set_log_level(saved_); }
  log_level saved_;
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(log_level::debug);
  EXPECT_EQ(get_log_level(), log_level::debug);
  set_log_level(log_level::error);
  EXPECT_EQ(get_log_level(), log_level::error);
}

TEST_F(LogTest, OffSuppressesEverything) {
  set_log_level(log_level::off);
  // Must not crash or emit; nothing observable to assert beyond survival.
  log_message(log_level::error, "test", "suppressed");
  CLASP_LOG(error, "test") << "also suppressed " << 42;
}

TEST_F(LogTest, StreamStyleBuildsMessages) {
  set_log_level(log_level::off);
  // The line object formats lazily; ensure operator<< chains compile for
  // common types and destruction is safe below the level.
  CLASP_LOG(debug, "component") << "x=" << 1 << " y=" << 2.5 << " z="
                                << std::string("s");
}

TEST_F(LogTest, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(log_level::debug),
            static_cast<int>(log_level::info));
  EXPECT_LT(static_cast<int>(log_level::info),
            static_cast<int>(log_level::warn));
  EXPECT_LT(static_cast<int>(log_level::warn),
            static_cast<int>(log_level::error));
  EXPECT_LT(static_cast<int>(log_level::error),
            static_cast<int>(log_level::off));
}

}  // namespace
}  // namespace clasp

#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace clasp {
namespace {

// The logger writes to stderr; these tests cover level gating semantics,
// which is the part callers depend on.
class LogTest : public ::testing::Test {
 protected:
  LogTest() : saved_(get_log_level()) {}
  ~LogTest() override { set_log_level(saved_); }
  log_level saved_;
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(log_level::debug);
  EXPECT_EQ(get_log_level(), log_level::debug);
  set_log_level(log_level::error);
  EXPECT_EQ(get_log_level(), log_level::error);
}

TEST_F(LogTest, OffSuppressesEverything) {
  set_log_level(log_level::off);
  // Must not crash or emit; nothing observable to assert beyond survival.
  log_message(log_level::error, "test", "suppressed");
  CLASP_LOG(error, "test") << "also suppressed " << 42;
}

TEST_F(LogTest, StreamStyleBuildsMessages) {
  set_log_level(log_level::off);
  // The line object formats lazily; ensure operator<< chains compile for
  // common types and destruction is safe below the level.
  CLASP_LOG(debug, "component") << "x=" << 1 << " y=" << 2.5 << " z="
                                << std::string("s");
}

TEST_F(LogTest, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug"), log_level::debug);
  EXPECT_EQ(parse_log_level("INFO"), log_level::info);
  EXPECT_EQ(parse_log_level("Warn"), log_level::warn);
  EXPECT_EQ(parse_log_level("error"), log_level::error);
  EXPECT_EQ(parse_log_level("off"), log_level::off);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
}

TEST_F(LogTest, InitFromEnvAppliesAndIgnoresGarbage) {
  set_log_level(log_level::warn);
  ::setenv("CLASP_LOG", "debug", 1);
  EXPECT_EQ(init_log_from_env(), log_level::debug);
  EXPECT_EQ(get_log_level(), log_level::debug);
  // Malformed values leave the level untouched.
  set_log_level(log_level::warn);
  ::setenv("CLASP_LOG", "nonsense", 1);
  EXPECT_EQ(init_log_from_env(), log_level::warn);
  ::unsetenv("CLASP_LOG");
  EXPECT_EQ(init_log_from_env(), log_level::warn);
}

TEST_F(LogTest, SinkCapturesGatedMessages) {
  struct captured {
    log_level level;
    std::string component;
    std::string message;
  };
  std::vector<captured> lines;
  set_log_sink([&](log_level lv, std::string_view c, std::string_view m) {
    lines.push_back({lv, std::string(c), std::string(m)});
  });
  set_log_level(log_level::info);
  log_message(log_level::debug, "gated", "below threshold");
  log_message(log_level::info, "heartbeat", "hour=5/24");
  CLASP_LOG(warn, "stream") << "x=" << 7;
  set_log_sink({});  // restore stderr default before asserting
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].level, log_level::info);
  EXPECT_EQ(lines[0].component, "heartbeat");
  EXPECT_EQ(lines[0].message, "hour=5/24");
  EXPECT_EQ(lines[1].component, "stream");
  EXPECT_EQ(lines[1].message, "x=7");
}

TEST_F(LogTest, UptimeIsMonotonic) {
  const double a = log_uptime_seconds();
  const double b = log_uptime_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST_F(LogTest, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(log_level::debug),
            static_cast<int>(log_level::info));
  EXPECT_LT(static_cast<int>(log_level::info),
            static_cast<int>(log_level::warn));
  EXPECT_LT(static_cast<int>(log_level::warn),
            static_cast<int>(log_level::error));
  EXPECT_LT(static_cast<int>(log_level::error),
            static_cast<int>(log_level::off));
}

}  // namespace
}  // namespace clasp

// The clasp::error hierarchy contract: every library failure derives
// from clasp::error, so one handler catches them all while categories
// stay distinguishable.
#include "util/error.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace clasp {
namespace {

template <typename E>
void expect_catchable_as_error(const char* message) {
  // Catchable as the exact type...
  EXPECT_THROW(throw E(message), E);
  // ...as the hierarchy root...
  try {
    throw E(message);
    FAIL() << "unreachable";
  } catch (const error& e) {
    EXPECT_STREQ(e.what(), message);
  }
  // ...and as std::exception (the root derives from std::runtime_error).
  try {
    throw E(message);
    FAIL() << "unreachable";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), message);
  }
}

TEST(ErrorTest, EverySubclassCatchableAsClaspError) {
  expect_catchable_as_error<invalid_argument_error>("bad argument");
  expect_catchable_as_error<not_found_error>("missing");
  expect_catchable_as_error<state_error>("wrong state");
  expect_catchable_as_error<budget_exceeded_error>("budget gone");
  expect_catchable_as_error<error>("root");
}

TEST(ErrorTest, CategoriesStayDistinguishable) {
  // A handler for one category must not swallow another.
  bool caught_not_found = false;
  try {
    throw state_error("deploy first");
  } catch (const not_found_error&) {
    caught_not_found = true;
  } catch (const error&) {
  }
  EXPECT_FALSE(caught_not_found);
}

}  // namespace
}  // namespace clasp

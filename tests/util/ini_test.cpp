#include "util/ini.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

TEST(IniTest, ParsesSectionsAndKeys) {
  const ini_document doc = ini_document::parse(
      "top = 1\n"
      "[internet]\n"
      "seed = 42\n"
      "name = The Dalles, OR\n"
      "\n"
      "# comment\n"
      "; also comment\n"
      "[servers]\n"
      "target = 1330\n");
  EXPECT_EQ(doc.get("top"), "1");
  EXPECT_EQ(doc.get_int("internet.seed"), 42);
  EXPECT_EQ(doc.get("internet.name"), "The Dalles, OR");
  EXPECT_EQ(doc.get_int("servers.target"), 1330);
  EXPECT_EQ(doc.entries().size(), 4u);
}

TEST(IniTest, WhitespaceTolerant) {
  const ini_document doc = ini_document::parse(
      "  [ spaced ]  \n"
      "   key   =   value with spaces   \n");
  EXPECT_EQ(doc.get("spaced.key"), "value with spaces");
}

TEST(IniTest, TypedAccessors) {
  const ini_document doc = ini_document::parse(
      "i = -5\nd = 2.75\nbt = yes\nbf = 0\n");
  EXPECT_EQ(doc.get_int("i"), -5);
  EXPECT_DOUBLE_EQ(doc.get_double("d"), 2.75);
  EXPECT_TRUE(doc.get_bool("bt"));
  EXPECT_FALSE(doc.get_bool("bf"));
}

TEST(IniTest, TypedErrors) {
  const ini_document doc = ini_document::parse("x = abc\n");
  EXPECT_THROW(doc.get_int("x"), invalid_argument_error);
  EXPECT_THROW(doc.get_double("x"), invalid_argument_error);
  EXPECT_THROW(doc.get_bool("x"), invalid_argument_error);
  EXPECT_THROW(doc.get("missing"), not_found_error);
  EXPECT_EQ(doc.get_or("missing", "fallback"), "fallback");
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_TRUE(doc.contains("x"));
}

TEST(IniTest, MalformedLinesThrowWithLineNumber) {
  try {
    ini_document::parse("good = 1\nno equals sign\n");
    FAIL() << "expected throw";
  } catch (const invalid_argument_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(ini_document::parse("[unterminated\n"), invalid_argument_error);
  EXPECT_THROW(ini_document::parse("= novalue\n"), invalid_argument_error);
}

TEST(IniTest, LastValueWins) {
  const ini_document doc = ini_document::parse("k = 1\nk = 2\n");
  EXPECT_EQ(doc.get("k"), "2");
}

TEST(IniTest, EmptyDocument) {
  const ini_document doc = ini_document::parse("");
  EXPECT_TRUE(doc.entries().empty());
}

}  // namespace
}  // namespace clasp

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace clasp {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  thread_pool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SerialPoolRunsInline) {
  thread_pool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  thread_pool pool(3);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 50L * (99L * 100L / 2L));
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  thread_pool pool(0);
  EXPECT_GE(pool.concurrency(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, EmptyBatchIsNoop) {
  thread_pool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "fn called for n=0"; });
}

TEST(ThreadPoolTest, FirstExceptionPropagates) {
  thread_pool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i % 2 == 0) {
                            throw invalid_argument_error("boom");
                          }
                        }),
      invalid_argument_error);
  // The pool survives a failed batch.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

}  // namespace
}  // namespace clasp

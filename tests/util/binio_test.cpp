#include "util/binio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/error.hpp"

namespace clasp {
namespace {

TEST(Crc32Test, KnownAnswers) {
  // The standard CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, SlicedPathMatchesBytewiseAcrossLengths) {
  // Lengths straddling the 8-byte slicing boundary, with embedded NULs
  // and high bytes, must agree with a reference bytewise computation.
  for (std::size_t len = 0; len < 64; ++len) {
    std::string bytes;
    for (std::size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>((i * 131 + 7) & 0xFF));
    }
    std::uint32_t ref = 0xFFFFFFFFu;
    for (const char ch : bytes) {
      ref ^= static_cast<std::uint8_t>(ch);
      for (int k = 0; k < 8; ++k) {
        ref = (ref & 1) ? 0xEDB88320u ^ (ref >> 1) : ref >> 1;
      }
    }
    EXPECT_EQ(crc32(bytes), ref ^ 0xFFFFFFFFu) << "len=" << len;
  }
}

TEST(BinioTest, FixedWidthRoundTrip) {
  binary_writer w;
  w.u8(0x7F);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  binary_reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0x7Fu);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(std::signbit(r.f64()), true);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.done());
}

TEST(BinioTest, FixedWidthLittleEndianLayout) {
  binary_writer w;
  w.u32(0x04030201u);
  w.u64(0x0807060504030201ull);
  const std::string bytes(w.bytes());
  ASSERT_EQ(bytes.size(), 12u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<unsigned>(bytes[i]), i + 1);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<unsigned>(bytes[4 + i]), i + 1);
  }
}

TEST(BinioTest, VarintRoundTripAtBoundaries) {
  binary_writer w;
  const std::uint64_t values[] = {0,
                                  1,
                                  0x7F,
                                  0x80,
                                  0x3FFF,
                                  0x4000,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) w.varint(v);
  const std::int64_t signed_values[] = {
      0, -1, 1, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : signed_values) w.svarint(v);
  binary_reader r(w.bytes());
  for (const std::uint64_t v : values) EXPECT_EQ(r.varint(), v);
  for (const std::int64_t v : signed_values) EXPECT_EQ(r.svarint(), v);
  EXPECT_TRUE(r.done());
}

TEST(BinioTest, TruncatedReadsThrow) {
  binary_writer w;
  w.u64(42);
  const std::string bytes(w.bytes());
  for (std::size_t keep = 0; keep < 8; ++keep) {
    binary_reader r(std::string_view(bytes).substr(0, keep));
    EXPECT_THROW(r.u64(), invalid_argument_error) << "keep=" << keep;
  }
  binary_reader r2("\xFF");
  EXPECT_THROW(r2.varint(), invalid_argument_error);
}

}  // namespace
}  // namespace clasp

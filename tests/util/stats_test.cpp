#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {
namespace {

TEST(StatsTest, MeanBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, SampleStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(sample_stddev(xs), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(sample_stddev(std::vector<double>{1.0}), 0.0);
}

TEST(PercentileTest, KnownQuartiles) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.5);
  EXPECT_DOUBLE_EQ(median(xs), 5.5);
}

TEST(PercentileTest, InterpolatesBetweenSamples) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 9.5);
}

TEST(PercentileTest, UnsortedInputHandled) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(PercentileTest, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 5.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 95.0), 42.0);
}

TEST(PercentileTest, Errors) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0),
               invalid_argument_error);
  EXPECT_THROW(percentile(xs, -1.0), invalid_argument_error);
  EXPECT_THROW(percentile(xs, 101.0), invalid_argument_error);
}

TEST(PercentileTest, PercentileOrFallsBackOnEmpty) {
  EXPECT_DOUBLE_EQ(percentile_or({}, 50.0, -1.0), -1.0);
  EXPECT_DOUBLE_EQ(percentile_or({}, 95.0, 0.0), 0.0);
}

TEST(PercentileTest, PercentileOrMatchesPercentileOnData) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile_or(xs, 50.0, -1.0), percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(percentile_or(xs, 0.0, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_or(xs, 100.0, -1.0), 10.0);
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(percentile_or(one, 99.0, -1.0), 42.0);
}

TEST(PercentileTest, PercentileOrClampsRank) {
  // Out-of-range ranks clamp instead of throwing: the caller asked for a
  // best-effort summary statistic, not validation.
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile_or(xs, -5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_or(xs, 250.0, 0.0), 3.0);
}

// Property: for any sample, percentiles are monotone and bounded.
class PercentileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  rng r(GetParam());
  std::vector<double> xs(1 + static_cast<std::size_t>(r.uniform_int(0, 200)));
  for (double& x : xs) x = r.normal(0.0, 100.0);
  double prev = percentile(xs, 0.0);
  const double lo = prev;
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_GE(lo, *std::min_element(xs.begin(), xs.end()) - 1e-12);
  EXPECT_LE(prev, *std::max_element(xs.begin(), xs.end()) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(CdfTest, EmpiricalCdfSteps) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 2.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative_fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative_fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_fraction, 1.0);
}

TEST(CdfTest, CdfAtQueries) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(cdf_at(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(sorted, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(sorted, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at(std::vector<double>{}, 1.0), 0.0);
}

TEST(KdeTest, IntegratesToRoughlyOne) {
  rng r(5);
  std::vector<double> xs(2000);
  for (double& x : xs) x = r.normal(50.0, 10.0);
  const auto kde = gaussian_kde(xs, 0.0, 100.0, 201);
  double integral = 0.0;
  for (std::size_t i = 1; i < kde.size(); ++i) {
    integral += 0.5 * (kde[i].density + kde[i - 1].density) *
                (kde[i].x - kde[i - 1].x);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(KdeTest, PeaksNearMode) {
  rng r(6);
  std::vector<double> xs(3000);
  for (double& x : xs) x = r.normal(30.0, 5.0);
  const auto kde = gaussian_kde(xs, 0.0, 60.0, 121);
  const auto peak = std::max_element(
      kde.begin(), kde.end(),
      [](const kde_point& a, const kde_point& b) { return a.density < b.density; });
  EXPECT_NEAR(peak->x, 30.0, 2.0);
}

TEST(KdeTest, Errors) {
  EXPECT_THROW(gaussian_kde(std::vector<double>{}, 0, 1, 10),
               invalid_argument_error);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(gaussian_kde(xs, 0, 1, 1), invalid_argument_error);
}

TEST(ElbowTest, FindsSyntheticKnee) {
  // y = exp(-3x): strong curvature near x ~ 1/3.
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    xs.push_back(x);
    ys.push_back(std::exp(-3.0 * x));
  }
  const std::size_t idx = elbow_index(xs, ys);
  EXPECT_GE(xs[idx], 0.15);
  EXPECT_LE(xs[idx], 0.55);
}

TEST(ElbowTest, Errors) {
  const std::vector<double> two{0.0, 1.0};
  EXPECT_THROW(elbow_index(two, two), invalid_argument_error);
  const std::vector<double> three{0.0, 0.5, 1.0};
  EXPECT_THROW(elbow_index(three, two), invalid_argument_error);
}

TEST(AutocorrelationTest, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> xs(24 * 30);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 24.0);
  }
  EXPECT_GT(autocorrelation(xs, 24), 0.9);
  EXPECT_LT(autocorrelation(xs, 12), -0.9);
}

TEST(AutocorrelationTest, WhiteNoiseNearZero) {
  rng r(7);
  std::vector<double> xs(5000);
  for (double& x : xs) x = r.normal();
  EXPECT_NEAR(autocorrelation(xs, 24), 0.0, 0.05);
}

TEST(AutocorrelationTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(autocorrelation(std::vector<double>{1.0}, 1), 0.0);
  const std::vector<double> flat(10, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(flat, 2), 0.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
}

TEST(HistogramTest, BinningAndEdges) {
  const std::vector<double> xs{0.0, 0.5, 1.0, 2.5, 5.0, -1.0, 6.0};
  const histogram h = make_histogram(xs, 0.0, 5.0, 5);
  ASSERT_EQ(h.counts.size(), 5u);
  EXPECT_EQ(h.counts[0], 2u);  // 0.0, 0.5
  EXPECT_EQ(h.counts[1], 1u);  // 1.0
  EXPECT_EQ(h.counts[2], 1u);  // 2.5
  EXPECT_EQ(h.counts[4], 1u);  // 5.0 lands in the last bin
  EXPECT_EQ(h.total(), 5u);    // -1 and 6 fall outside
}

TEST(HistogramTest, Errors) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(make_histogram(xs, 0.0, 1.0, 0), invalid_argument_error);
  EXPECT_THROW(make_histogram(xs, 1.0, 1.0, 3), invalid_argument_error);
}

}  // namespace
}  // namespace clasp

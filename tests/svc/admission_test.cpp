// Admission control: worker-unit accounting, the shared budget,
// per-tenant quotas, and FIFO-with-backfill admission order.
#include <gtest/gtest.h>

#include "svc/admission.hpp"
#include "util/error.hpp"

namespace clasp::svc {
namespace {

campaign_spec spec_of(int workers, int shards = -1, int days = 2) {
  campaign_spec spec;
  spec.days = days;
  spec.workers = workers;
  spec.shards = shards;
  return spec;
}

platform_config base_config() {
  platform_config cfg;
  cfg.campaign_workers = 2;  // what a spec's workers -1 resolves to
  cfg.campaign_shards = 1;
  return cfg;
}

admission_policy small_policy() {
  admission_policy policy;
  policy.worker_budget = 6;
  policy.max_admitted = 4;
  policy.tenant_max_admitted = 2;
  policy.tenant_max_active = 3;
  return policy;
}

TEST(SvcAdmission, UnitsAreThePeakConcurrentWorkers) {
  const platform_config base = base_config();
  // -1 falls back to the base config's workers.
  EXPECT_EQ(admission_controller::units(spec_of(-1), base), 2u);
  EXPECT_EQ(admission_controller::units(spec_of(3), base), 3u);
  // Shard processes dominate replay threads when larger.
  EXPECT_EQ(admission_controller::units(spec_of(1, 4), base), 4u);
  EXPECT_EQ(admission_controller::units(spec_of(5, 2), base), 5u);
  // workers 0 = hardware concurrency; at least one unit.
  EXPECT_GE(admission_controller::units(spec_of(0), base), 1u);
}

TEST(SvcAdmission, RejectsPolicyThatCanAdmitNothing) {
  admission_policy policy = small_policy();
  policy.worker_budget = 0;
  EXPECT_THROW(admission_controller ac(policy), invalid_argument_error);
  policy = small_policy();
  policy.max_admitted = 0;
  EXPECT_THROW(admission_controller ac(policy), invalid_argument_error);
}

TEST(SvcAdmission, CheckSubmitGatesImpossibleAndOverQuota) {
  const platform_config base = base_config();
  admission_controller ac(small_policy());
  campaign_registry reg;
  // A spec that could never fit the budget is refused outright.
  EXPECT_THROW(ac.check_submit(reg, "alice", spec_of(7), base),
               budget_exceeded_error);
  // Fill alice to her active quota (3): the fourth is refused, even
  // though none of hers are running — queued campaigns count as active.
  reg.submit("alice", spec_of(1, -1, 2));
  reg.submit("alice", spec_of(1, -1, 3));
  reg.submit("alice", spec_of(1, -1, 4));
  EXPECT_THROW(ac.check_submit(reg, "alice", spec_of(1, -1, 5), base),
               budget_exceeded_error);
  EXPECT_NO_THROW(ac.check_submit(reg, "bob", spec_of(1), base));
}

TEST(SvcAdmission, AdmitIsFifoWithBackfill) {
  const platform_config base = base_config();
  admission_controller ac(small_policy());
  campaign_registry reg;
  const std::uint64_t big = reg.submit("alice", spec_of(5)).id;
  const std::uint64_t mid = reg.submit("bob", spec_of(4, -1, 3)).id;
  const std::uint64_t small = reg.submit("carol", spec_of(1, -1, 4)).id;

  // FIFO admits the 5-unit head; the 4-unit second doesn't fit the
  // remaining 1 unit but doesn't block the 1-unit third (backfill).
  const auto first = ac.admit(reg, base);
  EXPECT_EQ(first, (std::vector<std::uint64_t>{big, small}));
  EXPECT_EQ(ac.reserved_units(reg, base), 6u);
  EXPECT_EQ(reg.record(mid).state, campaign_state::queued);

  // The skipped campaign is reconsidered every round: once the head
  // finishes and frees its units, it admits.
  reg.transition(big, campaign_state::running);
  reg.transition(big, campaign_state::done);
  EXPECT_EQ(ac.admit(reg, base), (std::vector<std::uint64_t>{mid}));
  EXPECT_EQ(ac.reserved_units(reg, base), 5u);
}

TEST(SvcAdmission, TenantAdmissionCapHoldsOthersBack) {
  const platform_config base = base_config();
  admission_policy policy = small_policy();
  policy.worker_budget = 8;
  admission_controller ac(policy);
  campaign_registry reg;
  const std::uint64_t a1 = reg.submit("alice", spec_of(1, -1, 2)).id;
  const std::uint64_t a2 = reg.submit("alice", spec_of(1, -1, 3)).id;
  const std::uint64_t a3 = reg.submit("alice", spec_of(1, -1, 4)).id;
  const std::uint64_t b1 = reg.submit("bob", spec_of(1, -1, 2)).id;
  // alice's third stays queued at tenant_max_admitted 2; bob backfills.
  EXPECT_EQ(ac.admit(reg, base), (std::vector<std::uint64_t>{a1, a2, b1}));
  EXPECT_EQ(reg.record(a3).state, campaign_state::queued);
}

TEST(SvcAdmission, PausedAndQueuedHoldNoBudget) {
  const platform_config base = base_config();
  admission_controller ac(small_policy());
  campaign_registry reg;
  const std::uint64_t id = reg.submit("alice", spec_of(5)).id;
  EXPECT_EQ(ac.reserved_units(reg, base), 0u);  // queued: nothing held
  reg.transition(id, campaign_state::admitted);
  EXPECT_EQ(ac.reserved_units(reg, base), 5u);
  reg.transition(id, campaign_state::running);
  EXPECT_EQ(ac.reserved_units(reg, base), 5u);
  // Pausing frees the whole reservation — a paused campaign costs only
  // its checkpoint — and the freed units admit someone else.
  reg.transition(id, campaign_state::paused);
  EXPECT_EQ(ac.reserved_units(reg, base), 0u);
  const std::uint64_t other = reg.submit("bob", spec_of(5, -1, 3)).id;
  EXPECT_EQ(ac.admit(reg, base), (std::vector<std::uint64_t>{other}));
}

}  // namespace
}  // namespace clasp::svc

// Scheduler determinism (the service's core contract): a campaign run
// through N-way time-slicing — paused and resumed every few hours,
// interleaved with another tenant's campaign, across worker counts
// {1, 2, 8} and shard counts {1, 2} — produces output byte-identical
// to one uninterrupted batch run. All six combos compare against the
// SAME baseline: workers and shards are output-neutral by the repo's
// standing determinism guarantees, so any divergence pins the blame on
// the scheduling machinery itself.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "svc/service.hpp"
#include "svc_test_support.hpp"

namespace clasp::svc {
namespace {

namespace fs = std::filesystem;

using ::clasp::svc::testing::batch_baseline_csv;
using ::clasp::svc::testing::read_file;
using ::clasp::svc::testing::tiny_service_config;

campaign_spec target_spec(int workers, int shards) {
  campaign_spec spec;
  spec.days = 1;
  spec.seed = 4242;
  spec.workers = workers;
  spec.shards = shards;
  return spec;
}

campaign_spec interferer_spec() {
  campaign_spec spec;
  spec.days = 1;
  spec.seed = 9999;
  spec.workers = 1;
  return spec;
}

class SvcSchedulerDeterminism
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvcSchedulerDeterminism, TimeSlicedRunMatchesUninterruptedRun) {
  const auto [workers, shards] = GetParam();
  const fs::path dir =
      fs::temp_directory_path() /
      ("clasp_svc_determinism_w" + std::to_string(workers) + "_s" +
       std::to_string(shards));
  fs::remove_all(dir);
  fs::create_directories(dir);

  platform_config cfg = tiny_service_config(dir);
  cfg.service.worker_budget = 16;  // the w8 combo must be admittable
  campaign_service service(cfg);
  const std::uint64_t target =
      service.submit("alice", target_spec(workers, shards));
  const std::uint64_t other = service.submit("bob", interferer_spec());

  // A few interleaved quanta (round-robin alternates the tenants), then
  // an explicit pause/resume of the target mid-flight, then run dry.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(service.tick());
  service.pause_campaign(target);
  EXPECT_TRUE(service.tick());  // the other tenant keeps running
  service.resume_campaign(target);
  service.run_to_idle();

  EXPECT_EQ(service.status_of(target).state, "done");
  EXPECT_EQ(service.status_of(other).state, "done");
  // The target yielded its slot repeatedly yet lost nothing.
  EXPECT_GE(service.status_of(target).preemptions, 1u);
  EXPECT_EQ(read_file(service.results_path(target)),
            batch_baseline_csv(target_spec(workers, shards)))
      << "workers=" << workers << " shards=" << shards;
  EXPECT_EQ(read_file(service.results_path(other)),
            batch_baseline_csv(interferer_spec()));
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByShards, SvcSchedulerDeterminism,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{2, 1},
                      std::pair<int, int>{8, 1}, std::pair<int, int>{1, 2},
                      std::pair<int, int>{2, 2}, std::pair<int, int>{8, 2}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "w" + std::to_string(info.param.first) + "_s" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace clasp::svc

// The campaign service end to end: multi-tenant scheduling under a
// shared budget, pause/resume/cancel mid-flight, daemon restart
// recovery, per-campaign checkpoint isolation — and the core contract
// that every service campaign's output is byte-identical to a batch-
// mode run of the same spec.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "clasp/platform.hpp"
#include "svc/service.hpp"
#include "svc_test_support.hpp"
#include "util/error.hpp"

namespace clasp::svc {
namespace {

namespace fs = std::filesystem;

using ::clasp::svc::testing::batch_baseline_csv;
using ::clasp::svc::testing::read_file;
using ::clasp::svc::testing::svc_test_dir;
using ::clasp::svc::testing::tiny_base_config;
using ::clasp::svc::testing::tiny_service_config;

campaign_spec spec_of(std::uint64_t seed, int days = 1, bool durable = true) {
  campaign_spec spec;
  spec.days = days;
  spec.seed = seed;
  spec.durable = durable;
  return spec;
}

TEST(SvcService, ConcurrentTenantsOverQuotaAllMatchBatch) {
  const fs::path dir = svc_test_dir("clasp_svc_multi");
  // Budget 4 with 2-unit campaigns: at most two run concurrently, so
  // four submissions are over quota and must queue + time-slice.
  campaign_service service(tiny_service_config(dir));
  const std::uint64_t a1 = service.submit("alice", spec_of(41));
  const std::uint64_t a2 = service.submit("alice", spec_of(42, 1, false));
  const std::uint64_t b1 = service.submit("bob", spec_of(43));
  const std::uint64_t b2 = service.submit("bob", spec_of(44, 1, false));

  service.run_to_idle();

  const service_status s = service.status_summary();
  EXPECT_EQ(s.done, 4u);
  EXPECT_EQ(s.queued + s.admitted + s.running + s.failed, 0u);
  EXPECT_EQ(s.reserved_units, 0u);
  EXPECT_EQ(s.resident, 0u);  // every session released on completion
  // Over-quota scheduling means somebody's quantum expired unfinished.
  EXPECT_GE(s.preemptions, 1u);

  for (const std::uint64_t id : {a1, a2, b1, b2}) {
    const campaign_status st = service.status_of(id);
    EXPECT_EQ(st.state, "done") << "campaign " << id;
    EXPECT_EQ(st.cursor_hours, st.end_hours);
    EXPECT_EQ(read_file(service.results_path(id)),
              batch_baseline_csv(service.registry().record(id).spec))
        << "campaign " << id << " diverged from its batch-mode twin";
  }
  fs::remove_all(dir);
}

TEST(SvcService, SubmitGatesBudgetQuotaAndDuplicates) {
  const fs::path dir = svc_test_dir("clasp_svc_gates");
  platform_config cfg = tiny_service_config(dir);
  cfg.service.tenant_max_active = 3;
  campaign_service service(cfg);

  // A spec whose units alone exceed the budget could never run.
  campaign_spec huge = spec_of(7);
  huge.workers = 8;  // budget is 4
  EXPECT_THROW(service.submit("alice", huge), budget_exceeded_error);

  // seed 0 = service assigns: reported back, never 0.
  const std::uint64_t id = service.submit("alice", spec_of(0));
  EXPECT_NE(service.status_of(id).seed, 0u);

  // Duplicate active identity from the same tenant — an operational
  // tweak (workers) doesn't dodge the fingerprint check.
  const std::uint64_t dup = service.submit("alice", spec_of(41));
  campaign_spec tweaked = spec_of(41);
  tweaked.workers = 1;
  EXPECT_THROW(service.submit("alice", tweaked), state_error);
  // Bob may run the same identity alice holds.
  EXPECT_NO_THROW(service.submit("bob", spec_of(41)));
  // Fill alice to tenant_max_active 3: the next submit is refused by
  // quota (the submit-time gate runs before the duplicate check).
  service.submit("alice", spec_of(55));
  EXPECT_THROW(service.submit("alice", spec_of(77)), budget_exceeded_error);
  // Cancelling frees both the quota slot and the identity.
  service.cancel_campaign(dup);
  EXPECT_NO_THROW(service.submit("alice", spec_of(41)));
  fs::remove_all(dir);
}

TEST(SvcService, PauseFreesBudgetResumeFinishesIdentically) {
  const fs::path dir = svc_test_dir("clasp_svc_pause");
  campaign_service service(tiny_service_config(dir));
  const std::uint64_t id = service.submit("alice", spec_of(42));

  // One tick: admitted -> running -> one 5h quantum.
  EXPECT_TRUE(service.tick());
  EXPECT_EQ(service.status_of(id).state, "running");
  EXPECT_GT(service.status_of(id).cursor_hours,
            service.status_of(id).begin_hours);

  service.pause_campaign(id);
  const campaign_status paused = service.status_of(id);
  EXPECT_EQ(paused.state, "paused");
  // A paused campaign holds no budget and no memory — only checkpoints.
  EXPECT_EQ(service.status_summary().reserved_units, 0u);
  EXPECT_EQ(service.status_summary().resident, 0u);
  EXPECT_FALSE(service.tick());  // nothing runnable while paused

  // Another tenant takes the freed budget meanwhile.
  const std::uint64_t other = service.submit("bob", spec_of(99));
  service.run_to_idle();
  EXPECT_EQ(service.status_of(other).state, "done");
  EXPECT_EQ(service.status_of(id).state, "paused");

  service.resume_campaign(id);
  service.run_to_idle();
  EXPECT_EQ(service.status_of(id).state, "done");
  // The resumed session warm-started from the pause checkpoint...
  EXPECT_GE(service.status_summary().warm_resumes, 1u);
  // ...and the sliced run's bytes match the uninterrupted twin's.
  EXPECT_EQ(read_file(service.results_path(id)),
            batch_baseline_csv(spec_of(42)));
  EXPECT_EQ(read_file(service.results_path(other)),
            batch_baseline_csv(spec_of(99)));
  fs::remove_all(dir);
}

TEST(SvcService, CancelMidFlightDropsSessionAndRefusesRevival) {
  const fs::path dir = svc_test_dir("clasp_svc_cancel");
  campaign_service service(tiny_service_config(dir));
  const std::uint64_t id = service.submit("alice", spec_of(42));
  EXPECT_TRUE(service.tick());
  service.cancel_campaign(id);
  EXPECT_EQ(service.status_of(id).state, "cancelled");
  EXPECT_EQ(service.status_summary().resident, 0u);
  EXPECT_FALSE(fs::exists(service.results_path(id)));  // never harvested
  // Terminal: neither pause nor resume nor cancel applies again.
  EXPECT_THROW(service.pause_campaign(id), state_error);
  EXPECT_THROW(service.resume_campaign(id), state_error);
  EXPECT_THROW(service.cancel_campaign(id), state_error);
  // The identity is free again immediately.
  EXPECT_NO_THROW(service.submit("alice", spec_of(42)));
  fs::remove_all(dir);
}

TEST(SvcService, RestartRecoversQueueAndOutputBytes) {
  const fs::path dir = svc_test_dir("clasp_svc_restart");
  const platform_config cfg = tiny_service_config(dir);
  std::uint64_t durable_id = 0, ephemeral_id = 0;
  {
    campaign_service first(cfg);
    durable_id = first.submit("alice", spec_of(42));
    ephemeral_id = first.submit("bob", spec_of(43, 1, false));
    // A few quanta of progress, then the daemon "dies" (destructor, no
    // drain): exactly what kill -9 leaves behind — the tick-persisted
    // registry plus whatever checkpoints the cadence published.
    EXPECT_TRUE(first.tick());
    EXPECT_TRUE(first.tick());
    EXPECT_TRUE(first.tick());
    EXPECT_GT(first.status_of(durable_id).cursor_hours,
              first.status_of(durable_id).begin_hours);
  }

  campaign_service second(cfg);
  // Reload demoted the in-flight records to queued; nothing was lost
  // but un-checkpointed hours.
  EXPECT_EQ(second.status_of(durable_id).state, "queued");
  EXPECT_EQ(second.status_of(ephemeral_id).state, "queued");
  second.run_to_idle();
  EXPECT_EQ(second.status_of(durable_id).state, "done");
  EXPECT_EQ(second.status_of(ephemeral_id).state, "done");
  // The durable campaign resumed from its checkpoint; the ephemeral one
  // restarted from scratch. Both must still match batch mode exactly.
  EXPECT_GE(second.status_summary().warm_resumes, 1u);
  EXPECT_EQ(read_file(second.results_path(durable_id)),
            batch_baseline_csv(spec_of(42)));
  EXPECT_EQ(read_file(second.results_path(ephemeral_id)),
            batch_baseline_csv(spec_of(43, 1, false)));
  fs::remove_all(dir);
}

TEST(SvcService, EvictionWarmResumesDurableSessions) {
  const fs::path dir = svc_test_dir("clasp_svc_evict");
  platform_config cfg = tiny_service_config(dir);
  cfg.service.max_resident = 1;  // every switch evicts the other session
  campaign_service service(cfg);
  const std::uint64_t a = service.submit("alice", spec_of(42));
  const std::uint64_t b = service.submit("bob", spec_of(43));
  service.run_to_idle();
  const service_status s = service.status_summary();
  EXPECT_EQ(s.done, 2u);
  EXPECT_GE(s.evictions, 1u);
  EXPECT_GE(s.warm_resumes, 1u);
  EXPECT_EQ(read_file(service.results_path(a)), batch_baseline_csv(spec_of(42)));
  EXPECT_EQ(read_file(service.results_path(b)), batch_baseline_csv(spec_of(43)));
  fs::remove_all(dir);
}

TEST(SvcService, NonDurableSessionsArePinnedNotEvicted) {
  const fs::path dir = svc_test_dir("clasp_svc_pinned");
  platform_config cfg = tiny_service_config(dir);
  cfg.service.max_resident = 1;
  campaign_service service(cfg);
  const std::uint64_t a = service.submit("alice", spec_of(42, 1, false));
  const std::uint64_t b = service.submit("bob", spec_of(43, 1, false));
  service.run_to_idle();
  const service_status s = service.status_summary();
  EXPECT_EQ(s.done, 2u);
  // Evicting an ephemeral session would lose its progress: the
  // scheduler over-commits residency instead.
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(read_file(service.results_path(a)), batch_baseline_csv(spec_of(42, 1, false)));
  EXPECT_EQ(read_file(service.results_path(b)), batch_baseline_csv(spec_of(43, 1, false)));
  fs::remove_all(dir);
}

// Satellite: the checkpoint-subdir collision fix. Two campaigns with
// the same label + region may never share a checkpoint subdirectory —
// their WAL records would interleave.
TEST(SvcIsolation, CheckpointSubdirCollisionIsATypedError) {
  const fs::path dir = svc_test_dir("clasp_svc_collision");
  platform_config cfg = tiny_base_config();
  cfg.campaign_checkpoint_dir = (dir / "ckpt").string();
  const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                          hour_stamp::from_civil({2020, 5, 1}, 0) + 24};
  clasp_platform platform(cfg);
  platform.start_topology_campaign("us-west1", window);
  EXPECT_THROW(platform.start_topology_campaign("us-west1", window),
               state_error);
  fs::remove_all(dir);
}

TEST(SvcIsolation, NamespaceSeparatesIdenticalCampaigns) {
  const fs::path dir = svc_test_dir("clasp_svc_namespace");
  // Two platforms, same checkpoint root, same label + region — the
  // per-(tenant, id) namespace the scheduler injects keeps them apart.
  platform_config cfg_a = tiny_base_config();
  cfg_a.campaign_checkpoint_dir = (dir / "ckpt").string();
  cfg_a.campaign_namespace = "alice-1";
  platform_config cfg_b = cfg_a;
  cfg_b.campaign_namespace = "bob-2";
  const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                          hour_stamp::from_civil({2020, 5, 1}, 0) + 24};
  clasp_platform pa(cfg_a);
  clasp_platform pb(cfg_b);
  campaign_runner& ca = pa.start_topology_campaign("us-west1", window);
  campaign_runner& cb = pb.start_topology_campaign("us-west1", window);
  EXPECT_NE(ca.config().checkpoint_dir, cb.config().checkpoint_dir);
  EXPECT_NE(ca.config().checkpoint_dir.find("alice-1"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace clasp::svc

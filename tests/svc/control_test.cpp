// Control plane: wire codecs, the unix-socket listener, and one live
// serve() loop driven through control_client (submit -> status ->
// shutdown), including a malformed frame the daemon must answer with an
// error reply instead of dying.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "dist/channel.hpp"
#include "svc/control.hpp"
#include "svc/service.hpp"
#include "svc_test_support.hpp"
#include "util/error.hpp"

namespace clasp::svc {
namespace {

namespace fs = std::filesystem;

using ::clasp::svc::testing::svc_test_dir;
using ::clasp::svc::testing::tiny_service_config;

TEST(SvcControl, RequestCodecRoundTrips) {
  control_request req;
  req.op = control_op::submit;
  req.tenant = "alice";
  req.id = 7;
  req.spec.region = "us-east1";
  req.spec.days = 9;
  req.spec.seed = 1234;
  req.spec.workers = 2;
  req.spec.shards = 2;
  req.spec.durable = false;
  const control_request back = decode_request(encode_request(req));
  EXPECT_EQ(back.op, control_op::submit);
  EXPECT_EQ(back.tenant, "alice");
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.spec.region, "us-east1");
  EXPECT_EQ(back.spec.days, 9);
  EXPECT_EQ(back.spec.seed, 1234u);
  EXPECT_FALSE(back.spec.durable);

  EXPECT_THROW(decode_request("not a control frame"), error);
  EXPECT_THROW(decode_request(encode_request(req) + "x"),
               invalid_argument_error);
  // A reply is not a request (and vice versa): the magics differ from
  // the shard protocol's too, so a misrouted frame is a typed error.
  EXPECT_THROW(decode_request(encode_reply(control_reply{})), error);
}

TEST(SvcControl, ReplyCodecRoundTrips) {
  control_reply reply;
  reply.ok = true;
  reply.id = 3;
  reply.service.queued = 1;
  reply.service.running = 2;
  reply.service.worker_budget = 8;
  reply.service.reserved_units = 5;
  reply.service.warm_resumes = 4;
  campaign_status c;
  c.id = 3;
  c.tenant = "bob";
  c.state = "running";
  c.region = "us-west1";
  c.days = 2;
  c.seed = 99;
  c.durable = true;
  c.cursor_hours = 17;
  c.begin_hours = 10;
  c.end_hours = 58;
  c.preemptions = 2;
  reply.campaigns.push_back(c);
  campaign_status failed;
  failed.id = 4;
  failed.state = "failed";
  failed.error = "exploded";
  reply.campaigns.push_back(failed);

  const control_reply back = decode_reply(encode_reply(reply));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.id, 3u);
  EXPECT_EQ(back.service.queued, 1u);
  EXPECT_EQ(back.service.running, 2u);
  EXPECT_EQ(back.service.reserved_units, 5u);
  EXPECT_EQ(back.service.warm_resumes, 4u);
  ASSERT_EQ(back.campaigns.size(), 2u);
  EXPECT_EQ(back.campaigns[0].tenant, "bob");
  EXPECT_EQ(back.campaigns[0].cursor_hours, 17);
  EXPECT_EQ(back.campaigns[0].preemptions, 2u);
  EXPECT_EQ(back.campaigns[1].error, "exploded");

  control_reply err;
  err.ok = false;
  err.error = "svc: no campaign with id 9";
  EXPECT_EQ(decode_reply(encode_reply(err)).error, err.error);
}

TEST(SvcControl, UnixListenerAcceptsFramedTraffic) {
  const fs::path dir = svc_test_dir("clasp_svc_sock");
  const std::string path = (dir / "echo.sock").string();

  // Nothing listening yet: connect is a typed error, not a hang.
  EXPECT_THROW(dist::connect_unix(path), state_error);

  dist::unix_listener listener(path);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(listener.accept(0), nullptr);  // poll, no client

  std::thread client_side([&] {
    auto client = dist::connect_unix(path);
    client->send("ping");
    std::string reply;
    ASSERT_EQ(client->recv(reply, 5000), dist::recv_status::ok);
    EXPECT_EQ(reply, "pong");
  });
  auto server = listener.accept(5000);
  ASSERT_NE(server, nullptr);
  std::string msg;
  ASSERT_EQ(server->recv(msg, 5000), dist::recv_status::ok);
  EXPECT_EQ(msg, "ping");
  server->send("pong");
  client_side.join();

  // A second listener on the same path replaces the stale socket file
  // (the daemon-restart case) instead of failing to bind.
  server.reset();
  { dist::unix_listener replacement(path); }
  EXPECT_FALSE(fs::exists(path));  // destructor unlinked it
  fs::remove_all(dir);
}

// One live daemon loop: serve() on a background thread, a real client
// on this one. Uses a 1-day campaign so the loop finishes real quanta
// between control rounds.
TEST(SvcControl, ServeAnswersSubmitStatusShutdown) {
  const fs::path dir = svc_test_dir("clasp_svc_serve");
  platform_config cfg = tiny_service_config(dir);
  campaign_service service(cfg);
  std::thread daemon([&] { EXPECT_EQ(service.serve(), 0); });

  control_client client(cfg.service.socket);
  // The daemon thread may not have bound the socket yet; retry briefly.
  const auto call_with_retry = [&](const control_request& req) {
    for (int attempt = 0;; ++attempt) {
      try {
        return client.call(req);
      } catch (const state_error&) {
        if (attempt >= 100) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
  };
  control_request submit;
  submit.op = control_op::submit;
  submit.tenant = "alice";
  submit.spec.days = 1;
  submit.spec.durable = false;
  control_reply reply = call_with_retry(submit);
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.id, 1u);

  // Duplicate active submission: an error reply, not a daemon exit.
  reply = client.call(submit);
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("already has this campaign"), std::string::npos);

  // A garbage frame gets an error reply too (CRC passes — it's a well-
  // framed payload — but the decode fails and is reported back).
  {
    auto raw = dist::connect_unix(cfg.service.socket);
    raw->send("definitely not a control request");
    std::string bytes;
    ASSERT_EQ(raw->recv(bytes, 10000), dist::recv_status::ok);
    const control_reply err = decode_reply(bytes);
    EXPECT_FALSE(err.ok);
    EXPECT_FALSE(err.error.empty());
  }

  control_request status;
  status.op = control_op::status;
  reply = client.call(status);
  ASSERT_TRUE(reply.ok);
  ASSERT_EQ(reply.campaigns.size(), 1u);
  EXPECT_EQ(reply.campaigns[0].tenant, "alice");
  EXPECT_EQ(reply.service.worker_budget, cfg.service.worker_budget);

  control_request shutdown;
  shutdown.op = control_op::shutdown;
  reply = client.call(shutdown);
  EXPECT_TRUE(reply.ok);
  daemon.join();
  // The daemon drained on shutdown: registry persisted, socket gone.
  EXPECT_TRUE(fs::exists(service.registry_path()));
  EXPECT_FALSE(fs::exists(cfg.service.socket));
  fs::remove_all(dir);
}

TEST(SvcControl, ClientReportsDeadDaemon) {
  const fs::path dir = svc_test_dir("clasp_svc_deadsock");
  control_client client((dir / "nobody.sock").string());
  control_request status;
  status.op = control_op::status;
  EXPECT_THROW(client.call(status), state_error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace clasp::svc

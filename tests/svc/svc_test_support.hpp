// Shared fixtures for the campaign-service suites: a tiny world (the
// campaign_resume_test substrate), service settings rooted in a
// per-test temp dir, and the batch-mode baseline a service campaign's
// output must match byte for byte.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "clasp/platform.hpp"
#include "svc/spec.hpp"
#include "test_support.hpp"

namespace clasp::svc::testing {

namespace fs = std::filesystem;

// The campaign_resume_test substrate: every structural feature, small
// enough that one platform builds in tens of milliseconds (the service
// suites build one platform per resident campaign).
inline platform_config tiny_base_config() {
  platform_config cfg;
  cfg.internet = ::clasp::testing::small_internet_config();
  cfg.internet.seed = 777;
  cfg.internet.regional_isp_count = 120;
  cfg.internet.business_count = 150;
  cfg.internet.hosting_count = 80;
  cfg.internet.education_count = 30;
  cfg.internet.vantage_point_count = 120;
  cfg.servers = ::clasp::testing::small_server_config();
  cfg.servers.us_server_target = 120;
  cfg.servers.global_server_target = 600;
  cfg.topology_budgets = {{"us-west1", 40}};
  return cfg;
}

// Fresh per-test scratch root (state dir, results dir, socket).
inline fs::path svc_test_dir(const std::string& prefix) {
  const fs::path dir =
      fs::temp_directory_path() /
      (prefix + "_" +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Base config + a [service] section under `dir`. quantum_hours 5 leaves
// a ragged tail against the 24h-multiple windows, so the final-quantum
// path (run() instead of run_until) is always exercised.
inline platform_config tiny_service_config(const fs::path& dir) {
  platform_config cfg = tiny_base_config();
  cfg.campaign_workers = 2;  // a spec's workers -1 = 2 units
  cfg.campaign_checkpoint_every_hours = 6;
  cfg.service.socket = (dir / "svc.sock").string();
  cfg.service.state_dir = (dir / "state").string();
  cfg.service.results_dir = (dir / "results").string();
  cfg.service.quantum_hours = 5;
  cfg.service.worker_budget = 4;
  cfg.service.max_admitted = 3;
  cfg.service.tenant_max_admitted = 2;
  cfg.service.tenant_max_active = 16;
  cfg.service.max_resident = 4;
  return cfg;
}

// The bytes `clasp_cli run --csv` would write for this spec: download
// series of the topology campaign, filtered by campaign + region.
inline std::string download_csv(clasp_platform& platform,
                                const std::string& region) {
  std::ostringstream out;
  tag_filter filter;
  filter.required["campaign"] = "topology";
  filter.required["region"] = region;
  platform.store().export_csv(out, "download_mbps", filter);
  return out.str();
}

// Uninterrupted batch-mode twin of a spec against the tiny base config,
// memoized per fingerprint (identical specs share one baseline; the
// repo's determinism tests already prove worker/shard invariance).
inline const std::string& batch_baseline_csv(const campaign_spec& spec) {
  static auto* memo = new std::map<std::uint64_t, std::string>;
  const std::uint64_t fp = spec_fingerprint(spec);
  const auto it = memo->find(fp);
  if (it != memo->end()) return it->second;
  platform_config cfg = resolve_platform_config(spec, tiny_base_config());
  cfg.campaign_shards = 1;  // in-process: the baseline must be cheap
  clasp_platform platform(cfg);
  campaign_runner& campaign =
      platform.start_topology_campaign(spec.region, spec_window(spec));
  EXPECT_TRUE(campaign.run());
  return memo->emplace(fp, download_csv(platform, spec.region)).first->second;
}

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace clasp::svc::testing

// Campaign spec + registry: validation, the state machine, duplicate
// refusal, auto-seeding, and crash-atomic persistence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "svc/registry.hpp"
#include "svc/spec.hpp"
#include "svc_test_support.hpp"
#include "util/error.hpp"

namespace clasp::svc {
namespace {

namespace fs = std::filesystem;

using ::clasp::svc::testing::svc_test_dir;

campaign_spec spec_of(const std::string& region = "us-west1", int days = 2,
                      std::uint64_t seed = 42) {
  campaign_spec spec;
  spec.region = region;
  spec.days = days;
  spec.seed = seed;
  return spec;
}

TEST(SvcSpec, ValidateRejectsImpossibleSpecs) {
  EXPECT_THROW(validate_spec(spec_of("nowhere-land")), error);
  EXPECT_THROW(validate_spec(spec_of("us-west1", 0)), invalid_argument_error);
  EXPECT_THROW(validate_spec(spec_of("us-west1", 154)),
               invalid_argument_error);
  campaign_spec bad = spec_of();
  bad.faults = "banana";
  EXPECT_THROW(validate_spec(bad), invalid_argument_error);
  bad = spec_of();
  bad.shards = 0;
  EXPECT_THROW(validate_spec(bad), invalid_argument_error);
  bad = spec_of();
  bad.fleet_scale = 0;
  EXPECT_THROW(validate_spec(bad), invalid_argument_error);
  EXPECT_NO_THROW(validate_spec(spec_of()));
}

TEST(SvcSpec, CodecRoundTripsEveryField) {
  campaign_spec spec = spec_of("us-east1", 9, 1234);
  spec.workers = 3;
  spec.shards = 2;
  spec.fleet_scale = 4;
  spec.faults = "low";
  spec.durable = false;
  const campaign_spec back = decode_spec(encode_spec(spec));
  EXPECT_EQ(back.region, spec.region);
  EXPECT_EQ(back.days, spec.days);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.workers, spec.workers);
  EXPECT_EQ(back.shards, spec.shards);
  EXPECT_EQ(back.fleet_scale, spec.fleet_scale);
  EXPECT_EQ(back.faults, spec.faults);
  EXPECT_EQ(back.durable, spec.durable);
  EXPECT_THROW(decode_spec(encode_spec(spec) + "x"), invalid_argument_error);
  EXPECT_THROW(decode_spec("garbage"), error);
}

TEST(SvcSpec, FingerprintTracksIdentityNotOperationalKnobs) {
  const campaign_spec a = spec_of();
  campaign_spec b = a;
  // workers/shards/durable don't change the output -> same identity.
  b.workers = 8;
  b.shards = 2;
  b.durable = false;
  EXPECT_EQ(spec_fingerprint(a), spec_fingerprint(b));
  // seed/days/region/faults/fleet_scale do change the output.
  b = a;
  b.seed = 43;
  EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
  b = a;
  b.days = 3;
  EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
  b = a;
  b.region = "us-east1";
  EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
  b = a;
  b.faults = "low";
  EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
  b = a;
  b.fleet_scale = 2;
  EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
}

TEST(SvcRegistry, SubmitAssignsIdsAndAutoSeeds) {
  campaign_registry reg;
  const campaign_record& a = reg.submit("alice", spec_of());
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(a.submit_seq, 1u);
  EXPECT_EQ(a.spec.seed, 42u);  // explicit seed kept
  EXPECT_EQ(a.state, campaign_state::queued);

  const campaign_record& b = reg.submit("bob", spec_of("us-west1", 2, 0));
  EXPECT_EQ(b.id, 2u);
  EXPECT_NE(b.spec.seed, 0u);  // 0 = service assigns, never stays 0

  // Auto-seeding is deterministic in (tenant, id): a second registry
  // replaying the same submissions reports the same seeds.
  campaign_registry replay;
  replay.submit("alice", spec_of());
  const campaign_record& b2 = replay.submit("bob", spec_of("us-west1", 2, 0));
  EXPECT_EQ(b2.spec.seed, b.spec.seed);

  EXPECT_THROW(reg.submit("", spec_of()), invalid_argument_error);
  EXPECT_THROW(reg.record(99), not_found_error);
}

TEST(SvcRegistry, DuplicateActiveSubmissionRefused) {
  campaign_registry reg;
  const std::uint64_t id = reg.submit("alice", spec_of()).id;
  // Same tenant + same identity while active: refused.
  EXPECT_THROW(reg.submit("alice", spec_of()), state_error);
  // Operational knobs don't dodge the check (same fingerprint)...
  campaign_spec tweaked = spec_of();
  tweaked.workers = 8;
  EXPECT_THROW(reg.submit("alice", tweaked), state_error);
  // ...but another tenant, or another identity, is fine.
  EXPECT_NO_THROW(reg.submit("bob", spec_of()));
  EXPECT_NO_THROW(reg.submit("alice", spec_of("us-west1", 3)));
  // After the first goes terminal, resubmitting is fine.
  reg.transition(id, campaign_state::cancelled);
  EXPECT_NO_THROW(reg.submit("alice", spec_of()));
}

TEST(SvcRegistry, StateMachineValidatesEveryEdge) {
  campaign_registry reg;
  const std::uint64_t id = reg.submit("alice", spec_of()).id;
  // queued can't run or finish without being admitted first.
  EXPECT_THROW(reg.transition(id, campaign_state::running), state_error);
  EXPECT_THROW(reg.transition(id, campaign_state::done), state_error);
  reg.transition(id, campaign_state::admitted);
  reg.transition(id, campaign_state::running);
  reg.transition(id, campaign_state::paused);
  // paused re-enters through queued, not straight back to running.
  EXPECT_THROW(reg.transition(id, campaign_state::running), state_error);
  reg.transition(id, campaign_state::queued);
  reg.transition(id, campaign_state::admitted);
  reg.transition(id, campaign_state::running);
  reg.transition(id, campaign_state::done);
  // Terminal states accept nothing.
  EXPECT_THROW(reg.transition(id, campaign_state::queued), state_error);
  EXPECT_THROW(reg.transition(id, campaign_state::cancelled), state_error);
  EXPECT_THROW(reg.fail(id, "too late"), state_error);

  const std::uint64_t id2 = reg.submit("alice", spec_of("us-west1", 3)).id;
  reg.fail(id2, "boom");
  EXPECT_EQ(reg.record(id2).state, campaign_state::failed);
  EXPECT_EQ(reg.record(id2).error, "boom");
}

TEST(SvcRegistry, CountsAndResetTransients) {
  campaign_registry reg;
  const std::uint64_t a = reg.submit("alice", spec_of()).id;
  const std::uint64_t b = reg.submit("alice", spec_of("us-west1", 3)).id;
  const std::uint64_t c = reg.submit("bob", spec_of()).id;
  reg.transition(a, campaign_state::admitted);
  reg.transition(a, campaign_state::running);
  reg.transition(b, campaign_state::admitted);
  EXPECT_EQ(reg.active_count(), 3u);
  EXPECT_EQ(reg.active_count("alice"), 2u);
  EXPECT_EQ(reg.count(campaign_state::running), 1u);
  // A daemon restart demotes admitted/running (their sessions died) and
  // leaves everything else alone.
  reg.transition(c, campaign_state::cancelled);
  reg.reset_transients();
  EXPECT_EQ(reg.count(campaign_state::queued), 2u);
  EXPECT_EQ(reg.count(campaign_state::running), 0u);
  EXPECT_EQ(reg.count(campaign_state::admitted), 0u);
  EXPECT_EQ(reg.record(c).state, campaign_state::cancelled);
}

TEST(SvcRegistry, PersistenceRoundTripsAndRejectsCorruption) {
  const fs::path dir = svc_test_dir("clasp_svc_registry");
  const std::string path = (dir / "sub" / "registry.bin").string();

  campaign_registry reg;
  campaign_record& a = reg.submit("alice", spec_of("us-west1", 2, 0));
  reg.submit("bob", spec_of("us-east1", 5, 99));
  reg.transition(a.id, campaign_state::admitted);
  a.cursor_hours += 7;
  a.preemptions = 3;
  reg.fail(2, "exploded");

  EXPECT_FALSE(campaign_registry::load(path).has_value());
  reg.save(path);  // creates parent dirs itself
  const auto back = campaign_registry::load(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->encode(), reg.encode());
  const campaign_record& ra = back->record(a.id);
  EXPECT_EQ(ra.tenant, "alice");
  EXPECT_EQ(ra.spec.seed, a.spec.seed);
  EXPECT_EQ(ra.state, campaign_state::admitted);
  EXPECT_EQ(ra.cursor_hours, a.cursor_hours);
  EXPECT_EQ(ra.preemptions, 3u);
  EXPECT_EQ(back->record(2).error, "exploded");
  // Ids are never reused, even across a save/load cycle.
  campaign_registry reloaded = *back;
  EXPECT_EQ(reloaded.submit("carol", spec_of()).id, 3u);

  // Flip one byte mid-file: the CRC trailer catches it as a typed error.
  std::string bytes = testing::read_file(path);
  bytes[bytes.size() / 2] ^= 0x40;
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(campaign_registry::load(path), error);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace clasp::svc

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/families.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace clasp {
namespace {

// Every test restores the global enabled flag: other suites in this
// binary rely on metrics being off by default.
class ObsMetricsTest : public ::testing::Test {
 protected:
  ObsMetricsTest() : was_enabled_(obs::enabled()) { obs::set_enabled(true); }
  ~ObsMetricsTest() override { obs::set_enabled(was_enabled_); }
  bool was_enabled_;
};

TEST_F(ObsMetricsTest, CounterAggregatesAcrossShards) {
  obs::counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsMetricsTest, DisabledAddsAreDropped) {
  obs::counter c;
  obs::set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsMetricsTest, ShardedAggregationUnderPool) {
  // Many threads hammering one counter must lose no increments, and the
  // value read after the pool barrier must be exact.
  obs::counter c;
  obs::histogram h(obs::duration_buckets());
  thread_pool pool(8);
  constexpr std::size_t kTasks = 10'000;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    c.add(1);
    h.observe(static_cast<double>(i % 7) * 0.01);
  });
  EXPECT_EQ(c.value(), kTasks);
  const obs::histogram::snapshot snap = h.read();
  EXPECT_EQ(snap.count, kTasks);
  std::uint64_t total = 0;
  for (const std::uint64_t n : snap.counts) total += n;
  EXPECT_EQ(total, kTasks);
}

TEST_F(ObsMetricsTest, GaugeLastWriteWins) {
  obs::gauge g;
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(ObsMetricsTest, HistogramBucketBoundariesAreInclusive) {
  // Prometheus `le` semantics: a sample equal to an upper bound lands in
  // that bucket, one epsilon above it spills into the next.
  const std::array<double, 3> bounds{1.0, 2.0, 5.0};
  obs::histogram h(bounds);
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // bucket le=1 (inclusive)
  h.observe(1.001); // bucket le=2
  h.observe(5.0);   // bucket le=5
  h.observe(99.0);  // overflow
  const obs::histogram::snapshot snap = h.read();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_NEAR(snap.sum, 106.501, 1e-9);
}

TEST_F(ObsMetricsTest, SnapshotQuantileInterpolates) {
  const std::array<double, 2> bounds{10.0, 20.0};
  obs::histogram h(bounds);
  for (int i = 0; i < 100; ++i) h.observe(5.0);   // all in le=10
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 10.0);
  // Empty snapshot: quantile is 0 by definition.
  obs::histogram empty(bounds);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
}

TEST_F(ObsMetricsTest, RegistryHandlesAreStableAcrossReset) {
  obs::metrics_registry reg;
  obs::counter& c = reg.get_counter("clasp_test_total");
  c.add(7);
  EXPECT_EQ(&reg.get_counter("clasp_test_total"), &c);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);  // handle still live after reset
  EXPECT_EQ(reg.counters().at("clasp_test_total"), 1u);
}

TEST_F(ObsMetricsTest, RegisterCoreFamiliesCoversTaxonomy) {
  obs::register_core_families();
  const auto counters = obs::metrics_registry::instance().counters();
  const auto gauges = obs::metrics_registry::instance().gauges();
  const auto histograms = obs::metrics_registry::instance().histograms();
  // One representative per instrumented subsystem: campaign, pool,
  // cache, TSDB/WAL, checkpoint, faults.
  EXPECT_TRUE(counters.contains(obs::family::kCampaignTests));
  EXPECT_TRUE(counters.contains(obs::family::kCacheHits));
  EXPECT_TRUE(counters.contains(obs::family::kWalBytes));
  EXPECT_TRUE(counters.contains(obs::family::kTsdbSnapshots));
  EXPECT_TRUE(counters.contains(obs::family::kCheckpointPublishes));
  EXPECT_TRUE(counters.contains(obs::family::kFaultsPreempts));
  EXPECT_TRUE(gauges.contains(obs::family::kPoolUtilization));
  EXPECT_TRUE(gauges.contains(obs::family::kCampaignCursorHours));
  EXPECT_TRUE(histograms.contains(obs::family::kCampaignHourSeconds));
}

TEST_F(ObsMetricsTest, PrometheusExpositionGolden) {
  obs::metrics_registry reg;
  obs::trace_ring ring;
  reg.get_counter("clasp_demo_total").add(3);
  reg.get_gauge("clasp_demo_gauge").set(2.5);
  const std::array<double, 2> bounds{1.0, 2.0};
  obs::histogram& h = reg.get_histogram("clasp_demo_seconds", bounds);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(7.0);
  const std::string text = obs::to_prometheus(reg, ring);
  const std::string expected_head =
      "# TYPE clasp_demo_total counter\n"
      "clasp_demo_total 3\n"
      "# TYPE clasp_demo_gauge gauge\n"
      "clasp_demo_gauge 2.5\n"
      "# TYPE clasp_demo_seconds histogram\n"
      "clasp_demo_seconds_bucket{le=\"1\"} 1\n"
      "clasp_demo_seconds_bucket{le=\"2\"} 2\n"
      "clasp_demo_seconds_bucket{le=\"+Inf\"} 3\n"
      "clasp_demo_seconds_sum 9\n"
      "clasp_demo_seconds_count 3\n";
  ASSERT_GE(text.size(), expected_head.size());
  EXPECT_EQ(text.substr(0, expected_head.size()), expected_head);
  // The empty ring still expose all eight phases, zeroed.
  EXPECT_NE(text.find("clasp_span_count_total{phase=\"deploy\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("clasp_span_count_total{phase=\"analysis\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE clasp_span_wall_seconds_total counter\n"),
            std::string::npos);
}

TEST_F(ObsMetricsTest, JsonExpositionGolden) {
  obs::metrics_registry reg;
  obs::trace_ring ring;
  reg.get_counter("clasp_demo_total").add(2);
  ring.record({obs::phase::stage, 12, 2'000'000'000ull, 500'000'000ull});
  const std::string json = obs::to_json(reg, ring);
  EXPECT_NE(json.find("\"clasp_demo_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"stage\": {\"count\": 1, \"wall_seconds\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("{\"phase\": \"stage\", \"hour\": 12, "
                      "\"wall_seconds\": 2, \"cpu_seconds\": 0.5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"recent_wall_seconds_p50\": 2"), std::string::npos);
}

TEST_F(ObsMetricsTest, TraceRingBoundsAndRollups) {
  obs::trace_ring ring;
  ring.set_capacity(3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ring.record({obs::phase::commit, static_cast<std::int64_t>(i), i * 100,
                 i * 10});
  }
  const std::vector<obs::span_record> recent = ring.recent();
  ASSERT_EQ(recent.size(), 3u);  // oldest two were overwritten
  EXPECT_EQ(recent.front().hour, 3);
  EXPECT_EQ(recent.back().hour, 5);
  const auto rollups = ring.rollups();
  const obs::phase_rollup& commit =
      rollups[static_cast<std::size_t>(obs::phase::commit)];
  EXPECT_EQ(commit.count, 5u);  // rollups count everything, ring is bounded
  EXPECT_EQ(commit.wall_ns, 1500u);
  EXPECT_EQ(commit.max_wall_ns, 500u);
  ring.reset();
  EXPECT_TRUE(ring.recent().empty());
  EXPECT_EQ(ring.rollups()[static_cast<std::size_t>(obs::phase::commit)].count,
            0u);
}

TEST_F(ObsMetricsTest, TraceSpanRecordsIntoGlobalRing) {
  obs::trace_ring::instance().reset();
  {
    const obs::trace_span span(obs::phase::prefill, 42);
  }
  const auto rollups = obs::trace_ring::instance().rollups();
  EXPECT_EQ(rollups[static_cast<std::size_t>(obs::phase::prefill)].count, 1u);
  const auto recent = obs::trace_ring::instance().recent();
  ASSERT_FALSE(recent.empty());
  EXPECT_EQ(recent.back().hour, 42);
  obs::trace_ring::instance().reset();
}

TEST_F(ObsMetricsTest, DisabledSpanRecordsNothing) {
  obs::trace_ring::instance().reset();
  obs::set_enabled(false);
  {
    const obs::trace_span span(obs::phase::prefill, 1);
  }
  EXPECT_TRUE(obs::trace_ring::instance().recent().empty());
}

}  // namespace
}  // namespace clasp

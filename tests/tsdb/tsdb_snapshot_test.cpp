// Durability layer round-trips: snapshot/restore of the store across
// every series shape, WAL framing, torn-tail recovery and the TSDB
// commit-record codec.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tsdb/tsdb.hpp"
#include "tsdb/wal.hpp"
#include "util/binio.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace clasp {
namespace {

namespace fs = std::filesystem;

hour_stamp h(std::int64_t n) { return hour_stamp{n}; }

std::string snapshot_bytes(const tsdb& db) {
  std::ostringstream os;
  db.snapshot_to(os);
  return os.str();
}

tsdb restored(const std::string& bytes) {
  std::istringstream is(bytes);
  tsdb db;
  db.restore_from(is);
  return db;
}

// A store exercising every series shape the campaign produces: empty
// interned series, single-point, long delta-encoded runs, negative
// hours, non-finite and signed-zero values, non-ASCII tag values (server
// names are arbitrary UTF-8 in the registry), tag values with the
// '\x1f' key separator, and multiple metrics.
tsdb build_fixture() {
  tsdb db;
  db.open_series("interned_only", {{"server", "Zürich-Großstadt"}});
  db.write("download_mbps", {{"server", "서울-1"}, {"region", "us-west1"}},
           h(-5), 512.5);
  db.write("download_mbps", {{"server", "서울-1"}, {"region", "us-west1"}},
           h(0), 480.25);
  db.write("download_mbps", {{"server", "서울-1"}, {"region", "us-west1"}},
           h(1000), -0.0);
  db.write("latency_ms", {{"server", "a\x1f=b"}}, h(3), 12.75);
  db.write("edge_values", {}, h(0),
           std::numeric_limits<double>::infinity());
  db.write("edge_values", {}, h(1),
           std::numeric_limits<double>::denorm_min());
  rng r(99);
  const series_ref ref =
      db.open_series("long_run", {{"server", "42"}, {"tier", "premium"}});
  for (int i = 0; i < 500; ++i) db.write(ref, h(i * 7), r.uniform());
  return db;
}

bool stores_identical(const tsdb& a, const tsdb& b) {
  // The snapshot codec is canonical (insertion order, delta-encoded
  // hours, bit-pattern values), so snapshot equality is store equality.
  return snapshot_bytes(a) == snapshot_bytes(b);
}

TEST(TsdbSnapshot, RoundTripAllSeriesShapes) {
  const tsdb db = build_fixture();
  const tsdb copy = restored(snapshot_bytes(db));
  EXPECT_EQ(copy.series_count(), db.series_count());
  EXPECT_EQ(copy.point_count(), db.point_count());
  EXPECT_TRUE(stores_identical(db, copy));

  // Non-ASCII tag values round-trip exactly and stay queryable.
  const ts_series* s = copy.find(
      "download_mbps", {{"server", "서울-1"}, {"region", "us-west1"}});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->points().size(), 3u);
  EXPECT_EQ(s->points()[0].at, h(-5));
  // Signed zero survives the bit-pattern codec.
  EXPECT_TRUE(std::signbit(s->points()[2].value));
  EXPECT_NE(copy.find("latency_ms", {{"server", "a\x1f=b"}}), nullptr);
}

TEST(TsdbSnapshot, RestoredRefsEqualOriginals) {
  tsdb db = build_fixture();
  tsdb copy = restored(snapshot_bytes(db));
  // Interning the same (metric, tags) in both stores yields the same ref
  // (series are serialized in insertion order), so WAL records encoded
  // by the original process replay correctly against the restored store.
  const tag_set tags = {{"server", "42"}, {"tier", "premium"}};
  EXPECT_EQ(copy.open_series("long_run", tags),
            db.open_series("long_run", tags));
  // Appending through the restored ref continues the series.
  const series_ref ref = copy.open_series("long_run", tags);
  copy.write(ref, h(500 * 7), 1.0);
  EXPECT_EQ(copy.series_at(ref).points().back().value, 1.0);
}

TEST(TsdbSnapshot, EmptyStoreRoundTrips) {
  const tsdb empty;
  const tsdb copy = restored(snapshot_bytes(empty));
  EXPECT_EQ(copy.series_count(), 0u);
  EXPECT_EQ(copy.point_count(), 0u);
}

TEST(TsdbSnapshot, RestoreReplacesExistingContents) {
  const tsdb db = build_fixture();
  tsdb target;
  target.write("stale_metric", {{"old", "yes"}}, h(0), 1.0);
  std::istringstream is(snapshot_bytes(db));
  target.restore_from(is);
  EXPECT_EQ(target.find("stale_metric", {{"old", "yes"}}), nullptr);
  EXPECT_TRUE(stores_identical(db, target));
}

TEST(TsdbSnapshot, DeterministicBytes) {
  EXPECT_EQ(snapshot_bytes(build_fixture()), snapshot_bytes(build_fixture()));
}

TEST(TsdbSnapshot, RejectsCorruptTruncatedAndWrongMagic) {
  const std::string good = snapshot_bytes(build_fixture());
  tsdb db;

  // Truncation at any of a few cut points (including mid-header).
  for (const std::size_t cut : {std::size_t{0}, std::size_t{3},
                                std::size_t{11}, good.size() - 1}) {
    std::istringstream is(good.substr(0, cut));
    EXPECT_THROW(db.restore_from(is), invalid_argument_error) << cut;
  }
  // A flipped payload byte fails the CRC before any parsing.
  std::string corrupt = good;
  corrupt[good.size() / 2] ^= 0x01;
  std::istringstream bad_crc(corrupt);
  EXPECT_THROW(db.restore_from(bad_crc), invalid_argument_error);
  // Wrong magic (CRC re-stamped so framing passes, magic check fires).
  std::string wrong_magic = good;
  wrong_magic[0] ^= 0x01;
  binary_writer crc_fix;
  crc_fix.u32(crc32(
      std::string_view(wrong_magic).substr(0, wrong_magic.size() - 4)));
  wrong_magic.replace(wrong_magic.size() - 4, 4, crc_fix.bytes());
  std::istringstream bad_magic(wrong_magic);
  EXPECT_THROW(db.restore_from(bad_magic), invalid_argument_error);
  // A failed restore must not clobber the target store.
  tsdb intact = build_fixture();
  std::istringstream bad_again(corrupt);
  EXPECT_THROW(intact.restore_from(bad_again), invalid_argument_error);
  EXPECT_TRUE(stores_identical(intact, build_fixture()));
}

TEST(TsdbSnapshot, PathOverloadsAndMissingFile) {
  const fs::path dir = fs::temp_directory_path() / "clasp_snap_test";
  fs::create_directories(dir);
  const std::string path = (dir / "db.snap").string();
  const tsdb db = build_fixture();
  db.snapshot_to(path);
  tsdb copy;
  copy.restore_from(path);
  EXPECT_TRUE(stores_identical(db, copy));
  EXPECT_THROW(copy.restore_from((dir / "missing.snap").string()),
               not_found_error);
  fs::remove_all(dir);
}

// --- WAL framing -----------------------------------------------------------

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("clasp_wal_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "wal.log").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string path_;
};

TEST_F(WalTest, MissingFileScansEmpty) {
  const wal_scan_result scan = scan_wal(path_);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST_F(WalTest, AppendScanRoundTrip) {
  {
    wal_writer wal(path_, /*truncate=*/true);
    wal.append("first");
    wal.append(std::string("\x00\x1f\xff with embedded NULs", 23));
    wal.append("");  // empty payloads are legal records
    wal.flush();
  }
  const wal_scan_result scan = scan_wal(path_);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0], "first");
  EXPECT_EQ(scan.records[1], std::string("\x00\x1f\xff with embedded NULs", 23));
  EXPECT_EQ(scan.records[2], "");
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.record_end.size(), 3u);
  EXPECT_EQ(scan.record_end.back(), scan.valid_bytes);
}

TEST_F(WalTest, AppendModeContinuesAfterExistingRecords) {
  {
    wal_writer wal(path_, /*truncate=*/true);
    wal.append("one");
    wal.flush();
  }
  {
    wal_writer wal(path_, /*truncate=*/false);
    wal.append("two");
    wal.flush();
  }
  const wal_scan_result scan = scan_wal(path_);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1], "two");
}

TEST_F(WalTest, TornTailIsDetectedAndTruncated) {
  {
    wal_writer wal(path_, /*truncate=*/true);
    wal.append("complete record");
    wal.append("this one will be torn");
    wal.flush();
  }
  const wal_scan_result full = scan_wal(path_);
  ASSERT_EQ(full.records.size(), 2u);
  // Tear mid-way through the second record's payload.
  fs::resize_file(path_, full.record_end[1] - 4);
  const wal_scan_result torn = scan_wal(path_);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(torn.records[0], "complete record");
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.valid_bytes, full.record_end[0]);
  // Recovery truncates the tear; the log is clean and appendable again.
  truncate_wal(path_, torn.valid_bytes);
  const wal_scan_result clean = scan_wal(path_);
  EXPECT_EQ(clean.records.size(), 1u);
  EXPECT_FALSE(clean.torn_tail);
  {
    wal_writer wal(path_, /*truncate=*/false);
    wal.append("after recovery");
    wal.flush();
  }
  EXPECT_EQ(scan_wal(path_).records.size(), 2u);
}

TEST_F(WalTest, CorruptPayloadStopsScanAtLastValidRecord) {
  {
    wal_writer wal(path_, /*truncate=*/true);
    wal.append("good");
    wal.append("flipped");
    wal.flush();
  }
  const wal_scan_result before = scan_wal(path_);
  ASSERT_EQ(before.records.size(), 2u);
  // Flip a byte inside the second record's payload: length still reads,
  // CRC fails, scan must stop after the first record.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(before.record_end[0] + 8));
    f.put('X');
  }
  const wal_scan_result after = scan_wal(path_);
  ASSERT_EQ(after.records.size(), 1u);
  EXPECT_EQ(after.records[0], "good");
  EXPECT_TRUE(after.torn_tail);
  // Every byte of the frame is on disk yet the CRC fails: interior
  // corruption, not a crash tear. The scan says so, distinctly.
  EXPECT_TRUE(after.corrupt);
}

TEST_F(WalTest, TornTailIsNotFlaggedCorrupt) {
  {
    wal_writer wal(path_, /*truncate=*/true);
    wal.append("complete");
    wal.append("will be torn");
    wal.flush();
  }
  const wal_scan_result full = scan_wal(path_);
  fs::resize_file(path_, full.record_end[1] - 3);
  const wal_scan_result torn = scan_wal(path_);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_FALSE(torn.corrupt);  // tearing only shortens, never rewrites
}

TEST_F(WalTest, AbsurdLengthFieldIsCorruptNotTorn) {
  {
    wal_writer wal(path_, /*truncate=*/true);
    wal.append("good");
    wal.append("length about to be trashed");
    wal.flush();
  }
  const wal_scan_result before = scan_wal(path_);
  ASSERT_EQ(before.records.size(), 2u);
  // Stamp an impossible length into the second record's header. The
  // bytes are all present — a tear cannot have produced this.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(before.record_end[0]));
    const char absurd[4] = {'\xff', '\xff', '\xff', '\x7f'};
    f.write(absurd, 4);
  }
  const wal_scan_result after = scan_wal(path_);
  ASSERT_EQ(after.records.size(), 1u);
  EXPECT_TRUE(after.corrupt);
  EXPECT_EQ(after.valid_bytes, before.record_end[0]);
}

TEST_F(WalTest, TsdbCommitRecordRoundTrip) {
  tsdb db;
  const series_ref a = db.open_series("m", {{"s", "1"}});
  const series_ref b = db.open_series("m", {{"s", "2"}});
  const std::vector<std::pair<series_ref, double>> writes = {
      {a, 100.5}, {b, -0.0}, {a, 200.25}};
  const std::string payload = encode_tsdb_commit(h(7), writes);
  apply_tsdb_commit(db, payload);
  EXPECT_EQ(db.series_at(a).points().size(), 2u);
  EXPECT_EQ(db.series_at(a).points()[0].value, 100.5);
  EXPECT_EQ(db.series_at(b).points()[0].at, h(7));
  EXPECT_TRUE(std::signbit(db.series_at(b).points()[0].value));
  // Not-a-commit payloads are rejected, as are trailing bytes.
  EXPECT_THROW(apply_tsdb_commit(db, "junk"), invalid_argument_error);
  EXPECT_THROW(apply_tsdb_commit(db, payload + "x"), invalid_argument_error);
}

}  // namespace
}  // namespace clasp

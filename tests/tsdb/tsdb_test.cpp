#include "tsdb/tsdb.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace clasp {
namespace {

hour_stamp h(int n) { return hour_stamp{n}; }

TEST(TsdbTest, WriteCreatesSeriesOnFirstUse) {
  tsdb db;
  db.write("download_mbps", {{"server", "1"}}, h(0), 500.0);
  db.write("download_mbps", {{"server", "1"}}, h(1), 510.0);
  db.write("download_mbps", {{"server", "2"}}, h(0), 300.0);
  EXPECT_EQ(db.series_count(), 2u);
  EXPECT_EQ(db.point_count(), 3u);
}

TEST(TsdbTest, FindExactTags) {
  tsdb db;
  db.write("m", {{"a", "1"}, {"b", "2"}}, h(0), 1.0);
  EXPECT_NE(db.find("m", {{"a", "1"}, {"b", "2"}}), nullptr);
  EXPECT_NE(db.find("m", {{"b", "2"}, {"a", "1"}}), nullptr);  // order-free
  EXPECT_EQ(db.find("m", {{"a", "1"}}), nullptr);
  EXPECT_EQ(db.find("other", {{"a", "1"}, {"b", "2"}}), nullptr);
}

TEST(TsdbTest, QueryWithFilter) {
  tsdb db;
  db.write("m", {{"region", "us-west1"}, {"server", "1"}}, h(0), 1.0);
  db.write("m", {{"region", "us-west1"}, {"server", "2"}}, h(0), 2.0);
  db.write("m", {{"region", "us-east1"}, {"server", "3"}}, h(0), 3.0);

  tag_filter west;
  west.required["region"] = "us-west1";
  EXPECT_EQ(db.query("m", west).size(), 2u);
  EXPECT_EQ(db.query("m").size(), 3u);
  tag_filter none;
  none.required["region"] = "mars";
  EXPECT_TRUE(db.query("m", none).empty());
  EXPECT_TRUE(db.query("missing_metric").empty());
}

TEST(TsdbTest, OutOfOrderAppendRejected) {
  tsdb db;
  db.write("m", {}, h(5), 1.0);
  EXPECT_THROW(db.write("m", {}, h(4), 2.0), invalid_argument_error);
  EXPECT_NO_THROW(db.write("m", {}, h(5), 3.0));  // equal timestamps fine
}

TEST(TsdbTest, RangeQueriesAreHalfOpen) {
  tsdb db;
  for (int i = 0; i < 10; ++i) db.write("m", {}, h(i), i);
  const ts_series* s = db.find("m", {});
  ASSERT_NE(s, nullptr);
  const auto r = s->range(h(3), h(7));
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r.front().value, 3.0);
  EXPECT_DOUBLE_EQ(r.back().value, 6.0);
  EXPECT_TRUE(s->range(h(20), h(30)).empty());
  EXPECT_EQ(s->values_in(h(0), h(10)).size(), 10u);
}

TEST(TsdbTest, TagAccessors) {
  tsdb db;
  db.write("m", {{"tier", "premium"}}, h(0), 1.0);
  const ts_series* s = db.find("m", {{"tier", "premium"}});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->tag("tier").value_or(""), "premium");
  EXPECT_FALSE(s->tag("region").has_value());
  EXPECT_EQ(s->metric(), "m");
}

TEST(TsdbTest, TagValuesEnumeratesDistinct) {
  tsdb db;
  db.write("m", {{"server", "1"}}, h(0), 1.0);
  db.write("m", {{"server", "2"}}, h(0), 1.0);
  db.write("m", {{"server", "1"}}, h(1), 1.0);
  const auto values = db.tag_values("m", "server");
  EXPECT_EQ(values.size(), 2u);
}

TEST(TsdbTest, SeriesKeyCollisionResistance) {
  // Tags that would concatenate identically must stay distinct.
  tsdb db;
  db.write("m", {{"ab", "c"}}, h(0), 1.0);
  db.write("m", {{"a", "bc"}}, h(0), 2.0);
  EXPECT_EQ(db.series_count(), 2u);
}

TEST(TsdbTest, LargeAppendAndScan) {
  tsdb db;
  for (int i = 0; i < 5000; ++i) {
    db.write("m", {{"s", "x"}}, h(i), static_cast<double>(i % 100));
  }
  const ts_series* s = db.find("m", {{"s", "x"}});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->size(), 5000u);
  EXPECT_EQ(s->range(h(1000), h(2000)).size(), 1000u);
}

}  // namespace
}  // namespace clasp
// Appended: CSV export tests (kept in this file to share the fixtures).
#include <sstream>

namespace clasp {
namespace {

TEST(TsdbTest, OpenSeriesInternsTagSets) {
  tsdb db;
  const tag_set tags = {{"region", "us-west1"}, {"server", "3"}};
  const series_ref ref = db.open_series("download_mbps", tags);
  // Re-opening resolves to the same ref; the string-keyed path lands in
  // the same series.
  EXPECT_EQ(db.open_series("download_mbps", tags), ref);
  EXPECT_EQ(db.series_count(), 1u);

  db.write(ref, h(0), 1.5);
  db.write("download_mbps", tags, h(1), 2.5);
  db.write(ref, h(2), 3.5);
  const ts_series* s = db.find("download_mbps", tags);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s, &db.series_at(ref));
  ASSERT_EQ(s->size(), 3u);
  EXPECT_EQ(s->points()[1].value, 2.5);
}

TEST(TsdbTest, InternedWriteKeepsTimeOrderContract) {
  tsdb db;
  const series_ref ref = db.open_series("m", {{"a", "b"}});
  db.write(ref, h(5), 1.0);
  EXPECT_THROW(db.write(ref, h(4), 2.0), invalid_argument_error);
  EXPECT_THROW(db.write(series_ref{99}, h(6), 1.0), not_found_error);
  EXPECT_THROW(db.series_at(series_ref{99}), not_found_error);
}

TEST(TsdbTest, EmptySeriesRangeIsEmpty) {
  // open_series creates a point-less series; range() must return an
  // empty span instead of dereferencing the end iterator.
  tsdb db;
  const series_ref ref = db.open_series("m", {{"a", "b"}});
  const ts_series& s = db.series_at(ref);
  EXPECT_TRUE(s.range(h(0), h(100)).empty());
  EXPECT_TRUE(s.values_in(h(0), h(100)).empty());
  // A metric opened but never written still shows up in queries.
  EXPECT_EQ(db.query("m").size(), 1u);
  EXPECT_EQ(db.point_count(), 0u);
}

TEST(TsdbCsvTest, HeaderAndRows) {
  tsdb db;
  db.write("m", {{"region", "us-west1"}, {"server", "3"}}, h(0), 1.5);
  db.write("m", {{"region", "us-west1"}, {"server", "3"}}, h(1), 2.5);
  std::ostringstream os;
  db.export_csv(os, "m");
  const std::string csv = os.str();
  EXPECT_NE(csv.find("hour,value,region,server"), std::string::npos);
  EXPECT_NE(csv.find("0,1.5,us-west1,3"), std::string::npos);
  EXPECT_NE(csv.find("1,2.5,us-west1,3"), std::string::npos);
}

TEST(TsdbCsvTest, QuotesCommasInFields) {
  tsdb db;
  db.write("m", {{"city", "Las Vegas, NV"}}, h(0), 7.0);
  std::ostringstream os;
  db.export_csv(os, "m");
  EXPECT_NE(os.str().find("\"Las Vegas, NV\""), std::string::npos);
}

TEST(TsdbCsvTest, QuotesQuotes) {
  tsdb db;
  db.write("m", {{"name", "the \"best\" server"}}, h(0), 1.0);
  std::ostringstream os;
  db.export_csv(os, "m");
  EXPECT_NE(os.str().find("\"the \"\"best\"\" server\""), std::string::npos);
}

TEST(TsdbCsvTest, FilterRestrictsRows) {
  tsdb db;
  db.write("m", {{"region", "a"}}, h(0), 1.0);
  db.write("m", {{"region", "b"}}, h(0), 2.0);
  tag_filter f;
  f.required["region"] = "a";
  std::ostringstream os;
  db.export_csv(os, "m", f);
  EXPECT_NE(os.str().find(",a"), std::string::npos);
  EXPECT_EQ(os.str().find(",b"), std::string::npos);
}

TEST(TsdbCsvTest, EmptyMetricJustHeader) {
  tsdb db;
  std::ostringstream os;
  db.export_csv(os, "missing");
  EXPECT_EQ(os.str(), "hour,value\n");
}

}  // namespace
}  // namespace clasp

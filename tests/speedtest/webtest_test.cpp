#include "speedtest/webtest.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

class WebtestTest : public ::testing::Test {
 protected:
  WebtestTest() : platform_(small_platform()) {
    static gcp_cloud::vm_id vm = platform_.cloud().create_vm(
        "us-central1", service_tier::premium);
    vm_ = vm;
  }

  // Any U.S. server.
  const speed_server& us_server(std::size_t i = 0) const {
    const auto us = platform_.registry().crawl("US");
    return platform_.registry().server(us[i % us.size()]);
  }

  clasp_platform& platform_;
  gcp_cloud::vm_id vm_{};
};

TEST_F(WebtestTest, ReportWithinShapingCaps) {
  speed_test_session session(&platform_.cloud(), &platform_.view(), vm_,
                             us_server());
  rng r(1);
  for (int h = 0; h < 48; ++h) {
    const auto report =
        session.run(hour_stamp::from_civil({2020, 6, 1}, 0) + h, r);
    EXPECT_GT(report.download.value, 0.0);
    EXPECT_LE(report.download.value, 1000.0 * 1.1);  // tc cap + noise
    EXPECT_GT(report.upload.value, 0.0);
    EXPECT_LE(report.upload.value, 100.0 * 1.1);  // tc uplink cap
    EXPECT_GT(report.latency.value, 0.0);
    EXPECT_GE(report.download_loss, 0.0);
    EXPECT_LE(report.download_loss, 0.95);
  }
}

TEST_F(WebtestTest, UploadsPinnedNearUplinkCap) {
  // The paper: most uploads report close to the 100 Mbps tc limit.
  speed_test_session session(&platform_.cloud(), &platform_.view(), vm_,
                             us_server(3));
  rng r(2);
  int near_cap = 0, total = 0;
  for (int h = 0; h < 24 * 7; ++h) {
    const auto report =
        session.run(hour_stamp::from_civil({2020, 6, 1}, 0) + h, r);
    ++total;
    if (report.upload.value > 80.0) ++near_cap;
  }
  EXPECT_GT(static_cast<double>(near_cap) / total, 0.8);
}

TEST_F(WebtestTest, ReportCarriesIdentity) {
  const speed_server& server = us_server(1);
  speed_test_session session(&platform_.cloud(), &platform_.view(), vm_,
                             server);
  rng r(3);
  const hour_stamp t = hour_stamp::from_civil({2020, 7, 4}, 12);
  const auto report = session.run(t, r);
  EXPECT_EQ(report.server_id, server.id);
  EXPECT_EQ(report.at, t);
  EXPECT_EQ(report.tier, service_tier::premium);
}

TEST_F(WebtestTest, DeterministicGivenRngState) {
  speed_test_session session(&platform_.cloud(), &platform_.view(), vm_,
                             us_server(2));
  rng r1(7), r2(7);
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 15}, 20);
  const auto a = session.run(t, r1);
  const auto b = session.run(t, r2);
  EXPECT_DOUBLE_EQ(a.download.value, b.download.value);
  EXPECT_DOUBLE_EQ(a.upload.value, b.upload.value);
  EXPECT_DOUBLE_EQ(a.latency.value, b.latency.value);
}

TEST_F(WebtestTest, PathsMatchVmTier) {
  static const gcp_cloud::vm_id std_vm = platform_.cloud().create_vm(
      "us-central1", service_tier::standard);
  const speed_server& server = us_server(4);
  speed_test_session prem(&platform_.cloud(), &platform_.view(), vm_, server);
  speed_test_session stnd(&platform_.cloud(), &platform_.view(), std_vm,
                          server);
  // The standard-tier download path must cross the cloud boundary at the
  // region city; premium generally enters elsewhere (unless the server is
  // nearby).
  const auto& net = platform_.net();
  ASSERT_TRUE(stnd.download_path().cloud_edge.has_value());
  const link_info& edge = net.topo->link_at(*stnd.download_path().cloud_edge);
  const router_index cloud_side =
      net.topo->owner_of(edge.a) == net.cloud ? edge.a : edge.b;
  EXPECT_EQ(net.topo->router_at(cloud_side).city,
            platform_.cloud().region_city("us-central1"));
  // And both sessions reach the same server.
  EXPECT_EQ(prem.server_id(), stnd.server_id());
}

TEST_F(WebtestTest, VolumeAccountingPositive) {
  speed_test_session session(&platform_.cloud(), &platform_.view(), vm_,
                             us_server(5));
  rng r(9);
  const auto report = session.run(hour_stamp::from_civil({2020, 8, 1}, 6), r);
  EXPECT_GT(report.volume_down.value, 0.0);
  EXPECT_GT(report.volume_up.value, 0.0);
  // 15 s at <=100 Mbps is at most ~190 MB up.
  EXPECT_LT(report.volume_up.value, 200.0);
}

TEST_F(WebtestTest, NullDependenciesRejected) {
  EXPECT_THROW(speed_test_session(nullptr, &platform_.view(), vm_, us_server()),
               invalid_argument_error);
  EXPECT_THROW(speed_test_session(&platform_.cloud(), nullptr, vm_, us_server()),
               invalid_argument_error);
}

}  // namespace
}  // namespace clasp

#include "speedtest/registry.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

TEST(RegistryTest, FleetSizesMatchConfig) {
  const auto& p = small_platform();
  const server_registry& reg = p.registry();
  EXPECT_EQ(reg.size(), p.config().servers.global_server_target);
  const auto us = reg.crawl("US");
  EXPECT_GE(us.size(), p.config().servers.us_server_target - 40);
  EXPECT_LE(us.size(), p.config().servers.us_server_target + 5);
}

TEST(RegistryTest, CrawlFiltersByCountry) {
  const server_registry& reg = small_platform().registry();
  for (const std::size_t id : reg.crawl("US")) {
    EXPECT_EQ(reg.server(id).country, "US");
  }
  const auto intl = reg.crawl("IN");
  EXPECT_FALSE(intl.empty());
  for (const std::size_t id : intl) {
    EXPECT_EQ(reg.server(id).country, "IN");
  }
}

TEST(RegistryTest, NamedCaseStudyServersExist) {
  const server_registry& reg = small_platform().registry();
  std::size_t cox = 0, cogent_hosted = 0, telstra = 0;
  for (const speed_server& s : reg.all()) {
    if (s.network.value == 22773) ++cox;
    if (s.network.value == 174) ++cogent_hosted;
    if (s.network.value == 1221) ++telstra;
  }
  EXPECT_GE(cox, 3u);            // San Diego / Las Vegas / Santa Barbara
  EXPECT_GE(cogent_hosted, 2u);  // Axigent + fdcservers
  EXPECT_GE(telstra, 2u);
}

TEST(RegistryTest, HostingCompanyDisplayNames) {
  const server_registry& reg = small_platform().registry();
  bool axigent = false, fdc = false;
  for (const speed_server& s : reg.all()) {
    if (s.name.find("Axigent") != std::string::npos) axigent = true;
    if (s.name.find("fdcservers") != std::string::npos) fdc = true;
  }
  EXPECT_TRUE(axigent);
  EXPECT_TRUE(fdc);
}

TEST(RegistryTest, OoklaCapacityFloor) {
  const server_registry& reg = small_platform().registry();
  for (const speed_server& s : reg.all()) {
    if (s.platform == speedtest_platform::ookla) {
      EXPECT_GE(s.capacity.value, 1000.0) << s.name;
    }
  }
}

TEST(RegistryTest, ComcastPlatformOnlyInComcastAs) {
  const server_registry& reg = small_platform().registry();
  std::size_t comcast = 0;
  for (const speed_server& s : reg.all()) {
    if (s.platform == speedtest_platform::comcast) {
      ++comcast;
      EXPECT_EQ(s.network.value, 7922u) << s.name;
    }
  }
  EXPECT_GT(comcast, 10u);
}

TEST(RegistryTest, PlatformMixIsOoklaDominated) {
  const server_registry& reg = small_platform().registry();
  std::size_t ookla = 0, mlab = 0;
  for (const speed_server& s : reg.all()) {
    if (s.platform == speedtest_platform::ookla) ++ookla;
    if (s.platform == speedtest_platform::mlab) ++mlab;
  }
  EXPECT_GT(ookla, mlab * 2);
  EXPECT_GT(mlab, 0u);
}

TEST(RegistryTest, DistinctAsesSubstantial) {
  const server_registry& reg = small_platform().registry();
  // The paper: ~1,387 servers across 799 U.S. ASes (ratio ~1.7). Scaled
  // down the ratio should hold roughly.
  const std::size_t servers = reg.crawl("US").size();
  const std::size_t ases = reg.distinct_ases("US");
  EXPECT_GT(ases, servers / 3);
  EXPECT_LE(ases, servers);
}

TEST(RegistryTest, InCityAsLookup) {
  const server_registry& reg = small_platform().registry();
  const speed_server& first = reg.server(0);
  const auto found = reg.in_city_as(first.city, first.network);
  EXPECT_FALSE(found.empty());
  for (const std::size_t id : found) {
    EXPECT_EQ(reg.server(id).city, first.city);
    EXPECT_EQ(reg.server(id).network, first.network);
  }
}

TEST(RegistryTest, ServerNamesIncludeCity) {
  const auto& p = small_platform();
  const server_registry& reg = p.registry();
  const speed_server& s = reg.server(0);
  EXPECT_NE(s.name.find(p.net().geo->city(s.city).name), std::string::npos);
}

TEST(RegistryTest, BadIdThrows) {
  const server_registry& reg = small_platform().registry();
  EXPECT_THROW(reg.server(reg.size()), not_found_error);
}

TEST(RegistryTest, ChurnAddAndRetire) {
  // A dedicated platform: churn mutates shared state.
  platform_config cfg;
  cfg.internet = ::clasp::testing::small_internet_config();
  cfg.internet.seed = 31337;
  cfg.servers = ::clasp::testing::small_server_config();
  clasp_platform p(cfg);
  server_registry& reg = const_cast<server_registry&>(p.registry());
  rng r(1);

  const as_index cox = *p.net().topo->find_as(asn{22773});
  const city_id city = p.net().topo->as_at(cox).presence.front();
  const std::size_t before = reg.crawl("US").size();
  const std::size_t id = reg.add_server(p.net(), cox, city,
                                        speedtest_platform::ookla,
                                        mbps::from_gbps(1.0), r);
  EXPECT_EQ(reg.crawl("US").size(), before + 1);
  EXPECT_FALSE(reg.retired(id));
  EXPECT_EQ(reg.server(id).network.value, 22773u);

  reg.retire_server(id);
  EXPECT_TRUE(reg.retired(id));
  EXPECT_EQ(reg.crawl("US").size(), before);
  // Still addressable by id (historical data keeps resolving).
  EXPECT_EQ(reg.server(id).name, reg.server(id).name);
  EXPECT_THROW(reg.retire_server(reg.size()), not_found_error);
}

TEST(RegistryTest, WithdrawnServersVanishFromEveryCrawlView) {
  // Withdrawal (fault-injection churn) must hide a server from all three
  // crawler views — country crawl, <city, AS> lookup and the distinct-AS
  // count — while id lookups keep resolving for historical data.
  platform_config cfg;
  cfg.internet = ::clasp::testing::small_internet_config();
  cfg.internet.seed = 4242;
  cfg.servers = ::clasp::testing::small_server_config();
  clasp_platform p(cfg);
  server_registry& reg = const_cast<server_registry&>(p.registry());

  // Pick a US server whose <city, AS> cell it is the only member of, so
  // retiring it empties the cell.
  std::size_t victim = reg.size();
  for (const std::size_t id : reg.crawl("US")) {
    const speed_server& s = reg.server(id);
    if (reg.in_city_as(s.city, s.network).size() == 1) {
      victim = id;
      break;
    }
  }
  ASSERT_LT(victim, reg.size());
  const speed_server& s = reg.server(victim);
  const std::size_t crawl_before = reg.crawl("US").size();
  const std::size_t ases_before = reg.distinct_ases("US");

  reg.retire_server(victim);
  EXPECT_TRUE(reg.server(victim).withdrawn);
  EXPECT_EQ(reg.crawl("US").size(), crawl_before - 1);
  EXPECT_TRUE(reg.in_city_as(s.city, s.network).empty());
  EXPECT_LE(reg.distinct_ases("US"), ases_before);
  EXPECT_EQ(reg.server(victim).id, victim);  // still addressable
}

TEST(RegistryTest, PlatformNames) {
  EXPECT_STREQ(to_string(speedtest_platform::ookla), "ookla");
  EXPECT_STREQ(to_string(speedtest_platform::mlab), "mlab");
  EXPECT_STREQ(to_string(speedtest_platform::comcast), "comcast");
}

}  // namespace
}  // namespace clasp

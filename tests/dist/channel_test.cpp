// Framed byte channels: framing round-trips, CRC rejection with stream
// resync, torn tails and peer-death detection — for both the socketpair
// transport the fork()ed workers use and the file-backed test channel.
#include "dist/channel.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"

namespace clasp::dist {
namespace {

namespace fs = std::filesystem;

fs::path test_dir() {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("clasp_channel_") +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct socket_pair {
  socket_pair() {
    int sv[2];
    EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sv));
    a = std::make_unique<fd_channel>(sv[0]);
    b = std::make_unique<fd_channel>(sv[1]);
  }
  std::unique_ptr<fd_channel> a;
  std::unique_ptr<fd_channel> b;
};

TEST(Channel, FdRoundTripsPayloads) {
  socket_pair p;
  const std::string binary("\x00\x01\xff framed \x7f\x00", 16);
  p.a->send("hello");
  p.a->send("");
  p.a->send(binary);
  std::string out;
  EXPECT_EQ(p.b->recv(out, 1000), recv_status::ok);
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(p.b->recv(out, 1000), recv_status::ok);
  EXPECT_EQ(out, "");
  EXPECT_EQ(p.b->recv(out, 1000), recv_status::ok);
  EXPECT_EQ(out, binary);
  // Both directions work over one socketpair.
  p.b->send("reply");
  EXPECT_EQ(p.a->recv(out, 1000), recv_status::ok);
  EXPECT_EQ(out, "reply");
}

TEST(Channel, FdBadCrcIsConsumedAndStreamResyncs) {
  // A damaged frame is reported — and skipped: the next frame must come
  // through clean, because the coordinator re-requests only the damaged
  // group, never the whole stream.
  socket_pair p;
  p.a->send_bad_crc("damaged");
  p.a->send("clean");
  std::string out;
  EXPECT_EQ(p.b->recv(out, 1000), recv_status::corrupt);
  EXPECT_EQ(p.b->recv(out, 1000), recv_status::ok);
  EXPECT_EQ(out, "clean");
}

TEST(Channel, FdSilenceIsTimeoutNotFailure) {
  socket_pair p;
  std::string out;
  EXPECT_EQ(p.b->recv(out, 30), recv_status::timeout);
  // Still usable afterwards.
  p.a->send("late");
  EXPECT_EQ(p.b->recv(out, 1000), recv_status::ok);
  EXPECT_EQ(out, "late");
}

TEST(Channel, FdTornFrameThenPeerDeathIsClosed) {
  // Half a frame followed by EOF is a crash mid-write: the receiver must
  // report the peer gone, not wait forever for the missing bytes.
  socket_pair p;
  p.a->send_torn("never finished");
  p.a->close();
  std::string out;
  EXPECT_EQ(p.b->recv(out, 1000), recv_status::closed);
}

TEST(Channel, FdSendToDeadPeerThrowsTyped) {
  socket_pair p;
  p.b->close();
  EXPECT_THROW(p.a->send("into the void"), state_error);
}

TEST(Channel, FileRoundTripsBothWays) {
  const fs::path dir = test_dir();
  const std::string a2b = (dir / "a2b").string();
  const std::string b2a = (dir / "b2a").string();
  file_channel left(b2a, a2b);
  file_channel right(a2b, b2a);
  left.send("ping");
  right.send("pong");
  std::string out;
  EXPECT_EQ(right.recv(out, 0), recv_status::ok);
  EXPECT_EQ(out, "ping");
  EXPECT_EQ(left.recv(out, 0), recv_status::ok);
  EXPECT_EQ(out, "pong");
  fs::remove_all(dir);
}

TEST(Channel, FileIncompleteFrameStaysTimeout) {
  // A file cannot distinguish "more bytes coming" from a torn tail; the
  // channel reports timeout and keeps reporting it — the ambiguity a
  // real torn stream has until the peer's death settles it.
  const fs::path dir = test_dir();
  file_channel left((dir / "b2a").string(), (dir / "a2b").string());
  file_channel right((dir / "a2b").string(), (dir / "b2a").string());
  std::string out;
  EXPECT_EQ(right.recv(out, 0), recv_status::timeout);  // nothing yet
  left.send_torn("half a frame");
  EXPECT_EQ(right.recv(out, 0), recv_status::timeout);
  EXPECT_EQ(right.recv(out, 0), recv_status::timeout);
  fs::remove_all(dir);
}

TEST(Channel, FileBadCrcAdvancesPastTheFrame) {
  const fs::path dir = test_dir();
  file_channel left((dir / "b2a").string(), (dir / "a2b").string());
  file_channel right((dir / "a2b").string(), (dir / "b2a").string());
  left.send_bad_crc("damaged");
  left.send("clean");
  std::string out;
  EXPECT_EQ(right.recv(out, 0), recv_status::corrupt);
  EXPECT_EQ(right.recv(out, 0), recv_status::ok);
  EXPECT_EQ(out, "clean");
  fs::remove_all(dir);
}

TEST(Channel, AbsurdLengthFieldIsClosedNotTimeout) {
  // A length field larger than any legal frame means the stream itself
  // is garbage — unrecoverable, unlike a CRC-failed frame.
  const fs::path dir = test_dir();
  {
    std::ofstream f(dir / "a2b", std::ios::binary);
    const char huge_len[8] = {'\x7f', '\x7f', '\x7f', '\x7f',
                              '\x00', '\x00', '\x00', '\x00'};
    f.write(huge_len, sizeof(huge_len));
  }
  file_channel right((dir / "a2b").string(), (dir / "b2a").string());
  std::string out;
  EXPECT_EQ(right.recv(out, 0), recv_status::closed);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace clasp::dist

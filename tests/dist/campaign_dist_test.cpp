// Fault-tolerant distributed replay: one campaign sharded across forked
// worker processes must produce output byte-identical to a
// single-process run — TSDB contents, billing, bucket artifacts, someta
// and the health report — at every shard count, under fault injection,
// and across the whole kill-point sweep: workers dying at the barrier,
// mid-frame, hanging silently, shipping damaged frames or damaged
// records, or being SIGKILLed for real mid-run. Failover recovery is
// always exactly the in-flight hour (deterministic staging re-stages it
// bit-exact), so none of this is allowed to show in the output.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "clasp/checkpoint.hpp"
#include "clasp/platform.hpp"
#include "dist/coordinator.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

namespace fs = std::filesystem;

using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;
using dist::dist_config;
using dist::dist_report;
using dist::shard_coordinator;
using dist::worker_chaos;

platform_config tiny_config(const std::string& faults_preset,
                            std::size_t fleet_scale = 1,
                            const std::string& checkpoint_dir = "") {
  platform_config cfg;
  cfg.internet = small_internet_config();
  cfg.internet.seed = 777;
  cfg.internet.regional_isp_count = 120;
  cfg.internet.business_count = 150;
  cfg.internet.hosting_count = 80;
  cfg.internet.education_count = 30;
  cfg.internet.vantage_point_count = 120;
  cfg.servers = small_server_config();
  cfg.servers.us_server_target = 120;
  cfg.servers.global_server_target = 600;
  cfg.topology_budgets = {{"us-west1", 40}};
  cfg.fleet_scale = fleet_scale;
  cfg.campaign_faults = fault_config::preset(faults_preset);
  cfg.campaign_checkpoint_dir = checkpoint_dir;
  cfg.campaign_checkpoint_every_hours = 10;
  return cfg;
}

// 28 hours: two 10-hour checkpoint intervals plus a ragged tail.
hour_range window() {
  return {hour_stamp::from_civil({2020, 6, 1}, 0),
          hour_stamp::from_civil({2020, 6, 1}, 0) + 28};
}

const char* kMetrics[] = {"download_mbps", "upload_mbps", "latency_ms",
                          "download_loss", "upload_loss", "gt_episode",
                          "test_status"};

// Everything a campaign produces, flattened for exact comparison.
struct campaign_snapshot {
  std::string csv;
  cost_report costs;
  double bucket_mb{0.0};
  std::size_t bucket_objects{0};
  std::size_t tests_run{0};
  std::size_t tests_missed{0};
  std::vector<std::vector<vm_metadata_sample>> someta;
  campaign_health health;
};

campaign_snapshot snapshot_of(clasp_platform& p, campaign_runner& c) {
  campaign_snapshot snap;
  std::ostringstream csv;
  for (const char* metric : kMetrics) p.store().export_csv(csv, metric);
  snap.csv = csv.str();
  snap.costs = p.cloud().costs();
  const storage_bucket& bucket = p.cloud().bucket(c.config().region);
  snap.bucket_mb = bucket.total_megabytes();
  snap.bucket_objects = bucket.object_count();
  snap.tests_run = c.tests_run();
  snap.tests_missed = c.tests_missed();
  for (std::size_t v = 0; v < c.vm_count(); ++v) {
    snap.someta.push_back(c.metadata(v).samples());
  }
  snap.health = c.health();
  return snap;
}

void expect_identical(const campaign_snapshot& a, const campaign_snapshot& b) {
  ASSERT_FALSE(a.csv.empty());
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.costs.vm_usd, b.costs.vm_usd);
  EXPECT_EQ(a.costs.egress_usd, b.costs.egress_usd);
  EXPECT_EQ(a.costs.storage_usd, b.costs.storage_usd);
  EXPECT_EQ(a.bucket_mb, b.bucket_mb);
  EXPECT_EQ(a.bucket_objects, b.bucket_objects);
  EXPECT_EQ(a.tests_run, b.tests_run);
  EXPECT_EQ(a.tests_missed, b.tests_missed);
  ASSERT_EQ(a.someta.size(), b.someta.size());
  for (std::size_t v = 0; v < a.someta.size(); ++v) {
    ASSERT_EQ(a.someta[v].size(), b.someta[v].size());
    for (std::size_t j = 0; j < a.someta[v].size(); ++j) {
      EXPECT_EQ(a.someta[v][j].at, b.someta[v][j].at);
      EXPECT_EQ(a.someta[v][j].cpu_utilization, b.someta[v][j].cpu_utilization);
      EXPECT_EQ(a.someta[v][j].memory_gb, b.someta[v][j].memory_gb);
      EXPECT_EQ(a.someta[v][j].io_wait, b.someta[v][j].io_wait);
      EXPECT_EQ(a.someta[v][j].cpu_saturated, b.someta[v][j].cpu_saturated);
    }
  }
  EXPECT_EQ(a.health.window_hours, b.health.window_hours);
  EXPECT_EQ(a.health.total_retries, b.health.total_retries);
  EXPECT_EQ(a.health.failed_tests, b.health.failed_tests);
  EXPECT_EQ(a.health.upload_failures, b.health.upload_failures);
  EXPECT_EQ(a.health.withdrawn_servers, b.health.withdrawn_servers);
  EXPECT_EQ(a.health.vm_redeploys, b.health.vm_redeploys);
  EXPECT_EQ(a.health.vm_downtime_hours, b.health.vm_downtime_hours);
  ASSERT_EQ(a.health.servers.size(), b.health.servers.size());
  for (std::size_t i = 0; i < a.health.servers.size(); ++i) {
    const auto& sa = a.health.servers[i];
    const auto& sb = b.health.servers[i];
    EXPECT_EQ(sa.server_id, sb.server_id);
    EXPECT_EQ(sa.scheduled_hours, sb.scheduled_hours);
    EXPECT_EQ(sa.completed, sb.completed);
    EXPECT_EQ(sa.failed, sb.failed);
    EXPECT_EQ(sa.retries, sb.retries);
    EXPECT_EQ(sa.down_hours, sb.down_hours);
    EXPECT_EQ(sa.withdrawn_hours, sb.withdrawn_hours);
    EXPECT_EQ(sa.skipped_hours, sb.skipped_hours);
  }
}

// The single-process, durability-free reference per (preset, fleet
// scale) — built once; platform construction dominates this suite.
const campaign_snapshot& reference(const std::string& faults_preset,
                                   std::size_t fleet_scale = 1) {
  static std::map<std::string, campaign_snapshot>* memo =
      new std::map<std::string, campaign_snapshot>();
  const std::string key =
      faults_preset + ":" + std::to_string(fleet_scale);
  const auto it = memo->find(key);
  if (it != memo->end()) return it->second;
  clasp_platform p(tiny_config(faults_preset, fleet_scale));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_TRUE(c.run());
  return memo->emplace(key, snapshot_of(p, c)).first->second;
}

// One distributed run: build the platform, deploy, run under `dc`,
// snapshot. `report` (optional) receives the coordinator's report.
campaign_snapshot run_distributed(const platform_config& cfg, dist_config dc,
                                  dist_report* report = nullptr) {
  clasp_platform p(cfg);
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  shard_coordinator coordinator(c, std::move(dc));
  EXPECT_TRUE(coordinator.run());
  if (report != nullptr) *report = coordinator.report();
  return snapshot_of(p, c);
}

fs::path test_dir() {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string("clasp_dist_") +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(CampaignDist, TwoShardsAreByteIdenticalToSingleProcess) {
  for (const char* preset : {"off", "low"}) {
    dist_config dc;
    dc.shards = 2;
    dist_report report;
    expect_identical(reference(preset),
                     run_distributed(tiny_config(preset), dc, &report));
    EXPECT_EQ(report.shards, 2u);
    EXPECT_EQ(report.hours, 28u);
    EXPECT_EQ(report.groups_merged, 2u * 28u);
    EXPECT_EQ(report.failovers, 0u);
    EXPECT_EQ(report.crc_rejects, 0u);
    EXPECT_GE(report.heartbeats, 28u);
  }
}

TEST(CampaignDist, FourShardsOverScaledFleetMatchSingleProcess) {
  // The base fleet is ~3 VMs; fleet_scale 2 gives every shard of four a
  // real slot range instead of silently clamping the interesting case.
  dist_config dc;
  dc.shards = 4;
  dist_report report;
  expect_identical(reference("low", 2),
                   run_distributed(tiny_config("low", 2), dc, &report));
  EXPECT_EQ(report.shards, 4u);
  EXPECT_EQ(report.groups_merged, 4u * 28u);
}

TEST(CampaignDist, ShardCountClampsToFleetSize) {
  clasp_platform p(tiny_config("off"));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  dist_config dc;
  dc.shards = 64;  // far more shards than VM slots
  shard_coordinator coordinator(c, dc);
  EXPECT_EQ(coordinator.shards(), c.vm_count());
  EXPECT_TRUE(coordinator.run());
  expect_identical(reference("off"), snapshot_of(p, c));
}

TEST(CampaignDist, WorkerDeathAtBarrierFailsOverInvisibly) {
  dist_config dc;
  dc.shards = 2;
  dc.chaos.resize(2);
  dc.chaos[0].exit_at_barrier = (window().begin_at + 5).hours_since_epoch();
  dist_report report;
  expect_identical(reference("low"),
                   run_distributed(tiny_config("low"), dc, &report));
  EXPECT_GE(report.failovers, 1u);
  EXPECT_GE(report.respawns, 1u);
  EXPECT_EQ(report.recovery_hours, 1u);
  EXPECT_EQ(report.hours, 28u);
}

TEST(CampaignDist, TornGroupMidFrameFailsOverInvisibly) {
  // The worker dies halfway through writing its group frame: the
  // coordinator sees a torn stream (EOF mid-frame) and must respawn, and
  // the replacement's re-staged hour must be bit-identical.
  dist_config dc;
  dc.shards = 2;
  dc.chaos.resize(2);
  dc.chaos[1].exit_mid_group = (window().begin_at + 3).hours_since_epoch();
  dist_report report;
  expect_identical(reference("low"),
                   run_distributed(tiny_config("low"), dc, &report));
  EXPECT_GE(report.failovers, 1u);
  EXPECT_GE(report.respawns, 1u);
}

TEST(CampaignDist, HungWorkerEarnsTimeoutsBackoffThenFailover) {
  // A wedged worker never closes its socket — only the heartbeat
  // deadline can catch it. The strike ladder (timeout, backoff-extended
  // deadlines, bounded retries) must end in failover, not a hang or a
  // coordinator crash.
  dist_config dc;
  dc.shards = 2;
  dc.heartbeat_timeout_ms = 150;
  dc.initial_backoff_ms = 20;
  dc.max_deadline_retries = 2;
  dc.chaos.resize(2);
  dc.chaos[0].hang_at_hour = (window().begin_at + 4).hours_since_epoch();
  dist_report report;
  expect_identical(reference("low"),
                   run_distributed(tiny_config("low"), dc, &report));
  EXPECT_GE(report.timeouts, 1u);
  EXPECT_GE(report.failovers, 1u);
}

TEST(CampaignDist, DamagedFrameIsResentNotFatal) {
  // Frame CRC failure: the channel stays in sync, the coordinator
  // re-requests exactly one group, and the worker survives.
  dist_config dc;
  dc.shards = 2;
  dc.chaos.resize(2);
  dc.chaos[1].bad_crc_frame = (window().begin_at + 6).hours_since_epoch();
  dist_report report;
  expect_identical(reference("low"),
                   run_distributed(tiny_config("low"), dc, &report));
  EXPECT_GE(report.crc_rejects, 1u);
  EXPECT_GE(report.resends, 1u);
  EXPECT_EQ(report.failovers, 0u);
}

TEST(CampaignDist, DamagedRecordInsideValidFrameIsResent) {
  // Payload damage before framing: the frame CRC passes, only the
  // per-record CRC in the protocol layer catches it. Same remedy as a
  // damaged frame — one resend, no failover.
  dist_config dc;
  dc.shards = 2;
  dc.chaos.resize(2);
  dc.chaos[0].corrupt_group = (window().begin_at + 2).hours_since_epoch();
  dist_report report;
  expect_identical(reference("low"),
                   run_distributed(tiny_config("low"), dc, &report));
  EXPECT_GE(report.crc_rejects, 1u);
  EXPECT_GE(report.resends, 1u);
  EXPECT_EQ(report.failovers, 0u);
}

TEST(CampaignDist, RealSigkillMidRunFailsOverInvisibly) {
  // Not simulated chaos: an actual SIGKILL to a live worker process at
  // an hour barrier, delivered through the coordinator's test hook.
  bool killed = false;
  dist_config dc;
  dc.shards = 2;
  dc.on_barrier_for_testing = [&killed](shard_coordinator& co,
                                        hour_stamp at) {
    if (!killed &&
        at.hours_since_epoch() == (window().begin_at + 7).hours_since_epoch()) {
      killed = true;
      EXPECT_GT(co.worker_pid(0), 0);
      co.kill_worker(0);
    }
  };
  dist_report report;
  expect_identical(reference("low"),
                   run_distributed(tiny_config("low"), dc, &report));
  EXPECT_TRUE(killed);
  EXPECT_GE(report.failovers, 1u);
  EXPECT_GE(report.respawns, 1u);
}

TEST(CampaignDist, FailoverBudgetExhaustionAbortsTyped) {
  // A shard that cannot stay up is a bug, not weather: with a zero
  // failover budget the first death must abort the run with a typed
  // error instead of respawning forever.
  clasp_platform p(tiny_config("off"));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  dist_config dc;
  dc.shards = 2;
  dc.max_failovers_per_shard = 0;
  dc.chaos.resize(2);
  dc.chaos[0].exit_at_barrier = (window().begin_at + 1).hours_since_epoch();
  shard_coordinator coordinator(c, dc);
  EXPECT_THROW(coordinator.run(), state_error);
}

TEST(CampaignDist, DurableDistributedRunKilledAndResumedStaysIdentical) {
  // Cross-mode durability: a distributed run killed mid-window resumes
  // in a fresh process — and the resumed half runs distributed too. The
  // coordinator mirrors run_until's checkpoint cadence, so the WAL and
  // checkpoints are interchangeable with single-process ones.
  const fs::path root = test_dir();
  std::string ckpt_dir;
  {
    clasp_platform p(tiny_config("low", 1, root.string()));
    campaign_runner& c = p.start_topology_campaign("us-west1", window());
    dist_config dc;
    dc.shards = 2;
    shard_coordinator coordinator(c, dc);
    EXPECT_TRUE(coordinator.run_until(window().begin_at + 15));
    ckpt_dir = c.config().checkpoint_dir;
    // Abandon the platform: same durable state as a coordinator SIGKILL
    // at this barrier.
  }
  ASSERT_TRUE(current_checkpoint(ckpt_dir).has_value());
  clasp_platform p(tiny_config("low", 1, root.string()));
  campaign_runner& c = p.start_topology_campaign("us-west1", window());
  EXPECT_TRUE(c.resume(ckpt_dir));
  dist_config dc;
  dc.shards = 2;
  shard_coordinator coordinator(c, dc);
  EXPECT_TRUE(coordinator.run());
  expect_identical(reference("low"), snapshot_of(p, c));
  fs::remove_all(root);
}

TEST(CampaignDist, DistMetricsAppearInPrometheusExposition) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  dist_config dc;
  dc.shards = 2;
  dc.chaos.resize(2);
  dc.chaos[0].exit_at_barrier = (window().begin_at + 3).hours_since_epoch();
  dist_report report;
  run_distributed(tiny_config("off"), dc, &report);
  EXPECT_GE(report.failovers, 1u);
  const std::string text = obs::to_prometheus();
  obs::set_enabled(was_enabled);
  for (const char* family :
       {"clasp_dist_workers", "clasp_dist_barrier_hour",
        "clasp_dist_groups_merged_total", "clasp_dist_records_total",
        "clasp_dist_heartbeats_total", "clasp_dist_failovers_total",
        "clasp_dist_respawns_total", "clasp_dist_barrier_seconds"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace clasp

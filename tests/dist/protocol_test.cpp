// Wire protocol: every message round-trips bit-exact, damaged group
// records surface as typed corruption (per-record CRC, independent of
// the channel's frame CRC), and malformed messages are rejected.
#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace clasp::dist {
namespace {

TEST(Protocol, HelloRoundTripsIdentityAndAssignment) {
  dist_message m;
  m.type = msg_type::hello;
  m.shard = 3;
  m.hour = 441'000;
  m.fingerprint = 0xDEADBEEFCAFEF00Dull;
  m.slot_begin = 12;
  m.slot_end = 17;
  const dist_message back = decode_message(encode_message(m));
  EXPECT_EQ(back.type, msg_type::hello);
  EXPECT_EQ(back.shard, m.shard);
  EXPECT_EQ(back.hour, m.hour);
  EXPECT_EQ(back.fingerprint, m.fingerprint);
  EXPECT_EQ(back.slot_begin, m.slot_begin);
  EXPECT_EQ(back.slot_end, m.slot_end);
}

TEST(Protocol, HourGroupRoundTripsBinaryRecords) {
  dist_message m;
  m.type = msg_type::hour_group;
  m.shard = 1;
  m.hour = 7;
  m.records = {std::string("\x00\x01\x02 wal bytes \xff\x00", 17), "",
               std::string(4096, '\x5a')};
  const dist_message back = decode_message(encode_message(m));
  EXPECT_EQ(back.type, msg_type::hour_group);
  ASSERT_EQ(back.records.size(), m.records.size());
  for (std::size_t i = 0; i < m.records.size(); ++i) {
    EXPECT_EQ(back.records[i], m.records[i]);
  }
}

TEST(Protocol, ControlMessagesRoundTrip) {
  for (const msg_type t : {msg_type::heartbeat, msg_type::ack,
                           msg_type::resend, msg_type::stop, msg_type::bye}) {
    dist_message m;
    m.type = t;
    m.shard = 2;
    m.hour = -5;  // svarint: pre-epoch hours must survive too
    const dist_message back = decode_message(encode_message(m));
    EXPECT_EQ(back.type, t);
    EXPECT_EQ(back.shard, 2u);
    EXPECT_EQ(back.hour, -5);
    EXPECT_TRUE(back.records.empty());
  }
}

TEST(Protocol, DamagedRecordFailsItsOwnCrc) {
  // The channel's frame CRC is computed at send time — over already
  // damaged bytes it still passes. Only the per-record CRC inside the
  // payload can catch damage that happened before framing.
  dist_message m;
  m.type = msg_type::hour_group;
  m.hour = 12;
  m.records = {"record zero", "record one"};
  std::string payload = encode_message(m);
  payload.back() = static_cast<char>(payload.back() ^ 0x20);
  EXPECT_THROW(decode_message(payload), corruption_error);
}

TEST(Protocol, UnknownTagIsMalformedNotCorrupt) {
  dist_message m;
  m.type = msg_type::heartbeat;
  std::string payload = encode_message(m);
  payload[0] = 'Z';
  EXPECT_THROW(decode_message(payload), invalid_argument_error);
}

TEST(Protocol, TrailingBytesAreRejected) {
  dist_message m;
  m.type = msg_type::ack;
  m.hour = 3;
  EXPECT_THROW(decode_message(encode_message(m) + "extra"),
               invalid_argument_error);
}

}  // namespace
}  // namespace clasp::dist

// Whole-pipeline determinism: two platforms built from the same seed make
// identical selections and identical first measurements.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet_config;
using ::clasp::testing::small_server_config;

platform_config tiny_config(std::uint64_t seed) {
  platform_config cfg;
  cfg.internet = small_internet_config();
  cfg.internet.seed = seed;
  // Shrink further: determinism needs two platforms in memory.
  cfg.internet.regional_isp_count = 120;
  cfg.internet.business_count = 150;
  cfg.internet.hosting_count = 80;
  cfg.internet.education_count = 30;
  cfg.internet.vantage_point_count = 120;
  cfg.servers = small_server_config();
  cfg.servers.us_server_target = 120;
  cfg.servers.global_server_target = 600;
  cfg.topology_budgets = {{"us-west1", 25}};
  return cfg;
}

TEST(DeterminismTest, SelectionsIdenticalAcrossRuns) {
  clasp_platform a(tiny_config(2024));
  clasp_platform b(tiny_config(2024));

  const auto& sa = a.select_topology("us-west1");
  const auto& sb = b.select_topology("us-west1");
  EXPECT_EQ(sa.pilot.links.size(), sb.pilot.links.size());
  EXPECT_EQ(sa.links_traversed_by_servers, sb.links_traversed_by_servers);
  ASSERT_EQ(sa.selected.size(), sb.selected.size());
  for (std::size_t i = 0; i < sa.selected.size(); ++i) {
    EXPECT_EQ(sa.selected[i].server_id, sb.selected[i].server_id);
    EXPECT_EQ(sa.selected[i].far_side, sb.selected[i].far_side);
  }
}

TEST(DeterminismTest, CampaignMeasurementsIdentical) {
  clasp_platform a(tiny_config(5));
  clasp_platform b(tiny_config(5));
  const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                          hour_stamp::from_civil({2020, 5, 2}, 0)};
  a.start_topology_campaign("us-west1", window).run();
  b.start_topology_campaign("us-west1", window).run();

  const auto series_a = a.download_series("topology", "us-west1");
  const auto series_b = b.download_series("topology", "us-west1");
  ASSERT_EQ(series_a.series.size(), series_b.series.size());
  ASSERT_FALSE(series_a.series.empty());
  for (std::size_t i = 0; i < series_a.series.size(); ++i) {
    const auto& pa = series_a.series[i]->points();
    const auto& pb = series_b.series[i]->points();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t j = 0; j < pa.size(); ++j) {
      EXPECT_EQ(pa[j].at, pb[j].at);
      EXPECT_DOUBLE_EQ(pa[j].value, pb[j].value);
    }
  }
  EXPECT_DOUBLE_EQ(a.cloud().costs().total(), b.cloud().costs().total());
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentMeasurements) {
  clasp_platform a(tiny_config(11));
  clasp_platform b(tiny_config(12));
  const hour_range window{hour_stamp::from_civil({2020, 5, 1}, 0),
                          hour_stamp::from_civil({2020, 5, 2}, 0)};
  a.start_topology_campaign("us-west1", window).run();
  b.start_topology_campaign("us-west1", window).run();
  // Not every number needs to differ, but the total spend almost surely
  // does (different fleets, different paths).
  EXPECT_NE(a.cloud().costs().total(), b.cloud().costs().total());
}

}  // namespace
}  // namespace clasp

// End-to-end integration: selection -> campaign -> analysis over the small
// fixture, checking that the paper's qualitative findings hold at reduced
// scale.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

// One shared two-week differential campaign on europe-west1.
std::pair<campaign_runner*, campaign_runner*> diff_campaign() {
  static auto runners = [] {
    auto& p = small_platform();
    const hour_range window{hour_stamp::from_civil({2020, 8, 1}, 0),
                            hour_stamp::from_civil({2020, 8, 15}, 0)};
    auto pair = p.start_differential_campaign("europe-west1", window);
    pair.first->run();
    pair.second->run();
    return pair;
  }();
  return runners;
}

TEST(PipelineTest, DifferentialCampaignProducesPairedSeries) {
  auto& p = small_platform();
  diff_campaign();
  const auto prem = p.download_series("diff-premium", "europe-west1");
  const auto stnd = p.download_series("diff-standard", "europe-west1");
  EXPECT_FALSE(prem.series.empty());
  EXPECT_EQ(prem.series.size(), stnd.series.size());
}

TEST(PipelineTest, StandardTierGenerallyFasterForLossyPremiumTargets) {
  // The paper's headline differential finding: for the selected servers
  // the standard tier's download throughput is generally higher.
  auto& p = small_platform();
  diff_campaign();
  const auto prem = p.download_series("diff-premium", "europe-west1");

  std::size_t negative = 0, total = 0, servers = 0;
  for (const ts_series* ps : prem.series) {
    tag_set std_tags = ps->tags();
    std_tags["campaign"] = "diff-standard";
    std_tags["tier"] = "standard";
    const ts_series* ss = p.store().find("download_mbps", std_tags);
    if (ss == nullptr) continue;
    ++servers;
    for (const double d : relative_differences(*ps, *ss)) {
      ++total;
      negative += d < 0 ? 1 : 0;
    }
  }
  ASSERT_GT(servers, 0u);
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(negative) / static_cast<double>(total), 0.5)
      << "standard tier should be faster in most measurements";
}

TEST(PipelineTest, MeasuredLatencyConsistentWithPretestClasses) {
  // Fig. 5c: "the latency measured in speed tests was consistent with the
  // results we obtained in the preliminary tests" — servers classified
  // premium_lower / standard_lower in the pre-test should show the same
  // sign in the campaign's hourly latency comparison.
  auto& p = small_platform();
  diff_campaign();
  const auto& selection = p.select_differential("europe-west1");

  std::size_t checked = 0, consistent = 0;
  for (const auto& chosen : selection.selected) {
    if (chosen.cls == latency_class::comparable) continue;
    tag_set tags = {{"campaign", "diff-premium"},
                    {"region", "europe-west1"},
                    {"tier", "premium"},
                    {"server", std::to_string(chosen.server_id)}};
    const speed_server& server = p.registry().server(chosen.server_id);
    tags["network"] = std::to_string(server.network.value);
    tags["city"] = p.net().geo->city(server.city).name;
    const ts_series* ps = p.store().find("latency_ms", tags);
    tag_set std_tags = tags;
    std_tags["campaign"] = "diff-standard";
    std_tags["tier"] = "standard";
    const ts_series* ss = p.store().find("latency_ms", std_tags);
    if (ps == nullptr || ss == nullptr) continue;
    ++checked;
    const auto deltas = relative_differences(*ps, *ss);
    std::size_t premium_lower_hours = 0;
    for (const double d : deltas) premium_lower_hours += d < 0 ? 1 : 0;
    const bool measured_premium_lower =
        premium_lower_hours * 2 > deltas.size();
    if (measured_premium_lower ==
        (chosen.cls == latency_class::premium_lower)) {
      ++consistent;
    }
  }
  if (checked == 0) GTEST_SKIP() << "no big-delta servers selected";
  EXPECT_GE(consistent * 4, checked * 3)
      << consistent << " of " << checked << " classes consistent";
}

TEST(PipelineTest, DetectorFindsPlantedCongestion) {
  auto& p = small_platform();
  diff_campaign();
  // Run the V_H detector against ground truth for every series of the
  // standard campaign and aggregate.
  const auto data = p.download_series("diff-standard", "europe-west1");
  detector_validation total;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    tag_set gt_tags = data.series[i]->tags();
    const ts_series* gt = p.store().find("gt_episode", gt_tags);
    ASSERT_NE(gt, nullptr);
    const auto v =
        validate_detector(*data.series[i], *gt, data.tz[i], 0.5);
    total.true_positive += v.true_positive;
    total.false_positive += v.false_positive;
    total.false_negative += v.false_negative;
    total.true_negative += v.true_negative;
  }
  // The detector is deliberately conservative (H=0.5); it should still
  // catch a good share of planted episodes with usable precision.
  if (total.true_positive + total.false_negative > 0) {
    EXPECT_GT(total.recall(), 0.2);
  }
  if (total.true_positive + total.false_positive > 0) {
    EXPECT_GT(total.precision(), 0.2);
  }
}

TEST(PipelineTest, CostsAreInPaperBallpark) {
  auto& p = small_platform();
  diff_campaign();
  // The fixture runs a 3-day topology campaign + 2x14-day differential
  // pair; spend must be positive and dominated by egress+VM as the paper
  // reports.
  const cost_report& costs = p.cloud().costs();
  EXPECT_GT(costs.total(), 10.0);
  EXPECT_GT(costs.egress_usd + costs.vm_usd, costs.storage_usd);
}

TEST(PipelineTest, GroundTruthEpisodesPresentInWindow) {
  auto& p = small_platform();
  diff_campaign();
  const auto data = p.download_series("diff-standard", "europe-west1",
                                      "gt_episode");
  std::size_t active = 0, total = 0;
  for (const ts_series* s : data.series) {
    for (const ts_point& pt : s->points()) {
      ++total;
      if (pt.value > 0.5) ++active;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(active, 0u) << "differential targets should see episodes";
  EXPECT_LT(static_cast<double>(active) / total, 0.5);
}

}  // namespace
}  // namespace clasp

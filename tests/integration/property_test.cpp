// Cross-module property tests: invariants that must hold for every
// region, tier, server and hour — checked over parameterized sweeps of
// the shared fixture.
#include <gtest/gtest.h>

#include "clasp/artifacts.hpp"
#include "probes/traceroute.hpp"
#include "test_support.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_platform;

// ---------------------------------------------------------------------------
// Selection invariants across every U.S. region.
// ---------------------------------------------------------------------------

class SelectionInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectionInvariants, HoldPerRegion) {
  auto& p = small_platform();
  const std::string region = GetParam();
  const topology_selection_result& sel = p.select_topology(region);

  // Coverage is a fraction; the budget caps the selection.
  EXPECT_GE(sel.coverage(), 0.0);
  EXPECT_LE(sel.coverage(), 1.0);
  const auto budget = p.config().topology_budgets.find(region);
  if (budget != p.config().topology_budgets.end()) {
    EXPECT_LE(sel.selected.size(), budget->second);
  }
  // Pilot discovered at least as many links as servers traversed (the
  // pilot probes all prefixes, servers are a subset of destinations).
  EXPECT_GE(sel.pilot.links.size(), sel.links_traversed_by_servers / 2);

  // Far sides unique; neighbors real and never the cloud itself; every
  // selected far side is in the pilot.
  std::unordered_set<std::uint32_t> fars;
  for (const selected_server& s : sel.selected) {
    EXPECT_TRUE(fars.insert(s.far_side.value()).second);
    EXPECT_NE(s.neighbor, cloud_asn());
    EXPECT_TRUE(p.net().topo->find_as(s.neighbor).has_value());
    EXPECT_TRUE(sel.pilot.contains(s.far_side));
    EXPECT_GE(s.as_path_len, 1u);
    EXPECT_LE(s.as_path_len, 4u);
  }
  // Pilot observations are internally consistent.
  for (const border_observation& obs : sel.pilot.links) {
    EXPECT_GT(obs.path_count, 0u);
    EXPECT_GE(obs.min_rtt.value, 0.0);
    EXPECT_TRUE(cloud_interconnect_pool().contains(obs.far_side));
  }
}

INSTANTIATE_TEST_SUITE_P(AllUsRegions, SelectionInvariants,
                         ::testing::Values("us-west1", "us-west2", "us-west4",
                                           "us-east1", "us-east4",
                                           "us-central1"));

// ---------------------------------------------------------------------------
// Speed-test report invariants across servers, hours and tiers.
// ---------------------------------------------------------------------------

struct report_case {
  std::size_t server_stride;
  service_tier tier;
};

class ReportInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReportInvariants, ReportsAlwaysSane) {
  auto& p = small_platform();
  const int server_pick = std::get<0>(GetParam());
  const service_tier tier = std::get<1>(GetParam()) == 0
                                ? service_tier::premium
                                : service_tier::standard;
  static std::map<int, gcp_cloud::vm_id> vms;
  const int tier_key = std::get<1>(GetParam());
  if (!vms.contains(tier_key)) {
    vms[tier_key] = p.cloud().create_vm("us-central1", tier);
  }
  const auto us = p.registry().crawl("US");
  const speed_server& server =
      p.registry().server(us[static_cast<std::size_t>(server_pick) * 13 %
                             us.size()]);
  speed_test_session session(&p.cloud(), &p.view(), vms[tier_key], server);
  rng r(static_cast<std::uint64_t>(server_pick) * 7919 + tier_key);
  for (int h = 0; h < 24 * 3; h += 5) {
    const auto report =
        session.run(hour_stamp::from_civil({2020, 7, 1}, 0) + h, r);
    EXPECT_GT(report.download.value, 0.0);
    EXPECT_LE(report.download.value, 1100.0);
    EXPECT_GT(report.upload.value, 0.0);
    EXPECT_LE(report.upload.value, 110.0);
    EXPECT_GT(report.latency.value, 1.0);
    EXPECT_LT(report.latency.value, 600.0);
    EXPECT_GE(report.download_loss, 0.0);
    EXPECT_LE(report.download_loss, 0.95);
    EXPECT_GE(report.upload_loss, 0.0);
    EXPECT_LE(report.upload_loss, 0.95);
    EXPECT_GT(report.volume_down.value, 0.0);
    EXPECT_GT(report.volume_up.value, 0.0);
    EXPECT_EQ(report.tier, tier);

    // Serialization round-trips every report exactly.
    const speed_test_report parsed =
        parse_report(serialize_report(report));
    EXPECT_DOUBLE_EQ(parsed.download.value, report.download.value);
    EXPECT_DOUBLE_EQ(parsed.latency.value, report.latency.value);
    EXPECT_EQ(parsed.at, report.at);
  }
}

INSTANTIATE_TEST_SUITE_P(ServerTierSweep, ReportInvariants,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(0, 1)));

// ---------------------------------------------------------------------------
// Traceroute serialization fuzz: real probe outputs round-trip exactly.
// ---------------------------------------------------------------------------

class TracerouteRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TracerouteRoundTrip, SerializesExactly) {
  auto& p = small_platform();
  const auto& vps = p.net().vantage_points;
  const endpoint src = p.planner().endpoint_of_host(
      vps[static_cast<std::size_t>(GetParam()) * 31 % vps.size()]);
  const city_id region = p.cloud().region_city("us-west1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  network_view view(&p.net());
  prober probe(&p.planner(), &view, /*nonresponse_prob=*/0.15);
  rng r(static_cast<std::uint64_t>(GetParam()) + 99);
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  const traceroute_result trace =
      probe.traceroute(path, hour_stamp::from_civil({2020, 8, 8}, 8), r);

  const traceroute_result parsed =
      parse_traceroute(serialize_traceroute(trace));
  ASSERT_EQ(parsed.hops.size(), trace.hops.size());
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    EXPECT_EQ(parsed.hops[i].address, trace.hops[i].address);
    EXPECT_DOUBLE_EQ(parsed.hops[i].rtt.value, trace.hops[i].rtt.value);
  }
}

INSTANTIATE_TEST_SUITE_P(ManyPaths, TracerouteRoundTrip,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Analysis invariants over whatever campaign data the fixture holds.
// ---------------------------------------------------------------------------

TEST(AnalysisInvariants, VariabilityAlwaysInUnitRange) {
  auto& p = small_platform();
  ::clasp::testing::ensure_east1_campaign(p);
  const auto data = p.download_series("topology", "us-east1");
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    for (const day_variability& d :
         daily_variability(*data.series[i], data.tz[i])) {
      EXPECT_GE(d.v, 0.0);
      EXPECT_LE(d.v, 1.0);
      EXPECT_GE(d.t_max, d.t_min);
      EXPECT_GT(d.samples, 0u);
    }
    for (const hour_label& l :
         intraday_labels(*data.series[i], data.tz[i], 0.5)) {
      EXPECT_GE(l.v_h, 0.0);
      EXPECT_LE(l.v_h, 1.0);
      EXPECT_EQ(l.congested, l.v_h > 0.5);
    }
    const auto prob =
        hourly_congestion_probability(*data.series[i], data.tz[i], 0.5);
    for (const double q : prob) {
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
}

TEST(AnalysisInvariants, SummariesAddUp) {
  auto& p = small_platform();
  ::clasp::testing::ensure_east1_campaign(p);
  const auto data = p.download_series("topology", "us-east1");
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const auto s = summarize_server(*data.series[i], data.tz[i], 0.5);
    EXPECT_LE(s.congested_days, s.days_measured);
    EXPECT_LE(s.congested_hours, s.hours_measured);
    EXPECT_LE(s.congested_days, s.congested_hours + 1);
    EXPECT_EQ(s.congested_server, s.congested_day_fraction() > 0.10);
  }
}

}  // namespace
}  // namespace clasp

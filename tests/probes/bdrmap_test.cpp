#include "probes/bdrmap.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

class BdrmapTest : public ::testing::Test {
 protected:
  BdrmapTest()
      : net_(small_internet()),
        planner_(&net_),
        view_(&net_),
        probe_(&planner_, &view_, /*nonresponse_prob=*/0.0),
        prefix2as_(net_.topo->build_prefix2as()),
        mapper_(&planner_, &probe_, &prefix2as_) {
    const city_id region = net_.geo->city_by_name("The Dalles, OR").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    vm_ = endpoint{net_.cloud, region,
                   net_.topo->router_at(*router).loopback, std::nullopt};
  }

  internet& net_;
  route_planner planner_;
  network_view view_;
  prober probe_;
  prefix2as_table prefix2as_;
  bdrmap mapper_;
  endpoint vm_;
};

TEST_F(BdrmapTest, DependenciesValidated) {
  EXPECT_THROW(bdrmap(nullptr, &probe_, &prefix2as_), invalid_argument_error);
  EXPECT_THROW(bdrmap(&planner_, nullptr, &prefix2as_),
               invalid_argument_error);
  EXPECT_THROW(bdrmap(&planner_, &probe_, nullptr), invalid_argument_error);
}

TEST_F(BdrmapTest, FindBorderOnSingleTrace) {
  rng r(1);
  // Traceroute toward a vantage point host.
  const endpoint dst = planner_.endpoint_of_host(net_.vantage_points[0]);
  const route_path p = planner_.from_cloud(vm_, dst, service_tier::premium);
  const auto trace =
      probe_.traceroute(p, hour_stamp::from_civil({2020, 4, 20}, 9), r);
  const auto border = mapper_.find_border(trace);
  ASSERT_TRUE(border.has_value());
  const auto [far, neighbor] = *border;
  // Ground truth: the far side is the non-cloud interface of cloud_edge.
  ASSERT_TRUE(p.cloud_edge.has_value());
  const link_info& edge = net_.topo->link_at(*p.cloud_edge);
  const bool a_is_cloud = net_.topo->owner_of(edge.a) == net_.cloud;
  EXPECT_EQ(far, a_is_cloud ? edge.addr_b : edge.addr_a);
  // Neighbor attribution: the owner of the far-side router, or the first
  // AS after the border (its transit customer path still attributes the
  // link to the AS whose space follows — here the far router's owner).
  const as_index far_owner =
      net_.topo->owner_of(a_is_cloud ? edge.b : edge.a);
  EXPECT_EQ(neighbor, net_.topo->as_at(far_owner).number);
}

TEST_F(BdrmapTest, FarSideIsInInterconnectPool) {
  rng r(2);
  const endpoint dst = planner_.endpoint_of_host(net_.vantage_points[5]);
  const route_path p = planner_.from_cloud(vm_, dst, service_tier::premium);
  const auto trace =
      probe_.traceroute(p, hour_stamp::from_civil({2020, 4, 20}, 9), r);
  const auto border = mapper_.find_border(trace);
  ASSERT_TRUE(border.has_value());
  EXPECT_TRUE(cloud_interconnect_pool().contains(border->first));
  // Naive prefix2as calls it Google — the whole point of bdrmap.
  EXPECT_EQ(prefix2as_.lookup(border->first)->value, cloud_asn().value);
}

TEST_F(BdrmapTest, AbsorbDeduplicatesByFarSide) {
  rng r(3);
  bdrmap_result result;
  const endpoint dst = planner_.endpoint_of_host(net_.vantage_points[0]);
  const route_path p = planner_.from_cloud(vm_, dst, service_tier::premium);
  const hour_stamp t = hour_stamp::from_civil({2020, 4, 20}, 9);
  mapper_.absorb(probe_.traceroute(p, t, r), result);
  mapper_.absorb(probe_.traceroute(p, t, r), result);
  EXPECT_EQ(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].path_count, 2u);
}

TEST_F(BdrmapTest, PilotDiscoversMostVisibleLinks) {
  rng r(4);
  const auto result = mapper_.run_pilot(
      vm_, service_tier::premium, hour_stamp::from_civil({2020, 4, 20}, 9), r);
  EXPECT_GT(result.traceroutes_run, 500u);

  // Ground truth cloud links.
  std::size_t cloud_links = 0;
  for (const link_info& l : net_.topo->links()) {
    if (l.kind != link_kind::interdomain) continue;
    if (net_.topo->owner_of(l.a) == net_.cloud ||
        net_.topo->owner_of(l.b) == net_.cloud) {
      ++cloud_links;
    }
  }
  EXPECT_GT(result.links.size(), cloud_links / 2);
  EXPECT_LE(result.links.size(), cloud_links);

  // Every discovered far side must be a real interface of a real cloud
  // link (no false borders).
  for (const border_observation& obs : result.links) {
    const auto link = net_.topo->link_of_interface(obs.far_side);
    ASSERT_TRUE(link.has_value());
    const link_info& l = net_.topo->link_at(*link);
    EXPECT_EQ(l.kind, link_kind::interdomain);
    const bool touches_cloud = net_.topo->owner_of(l.a) == net_.cloud ||
                               net_.topo->owner_of(l.b) == net_.cloud;
    EXPECT_TRUE(touches_cloud);
  }
}

TEST_F(BdrmapTest, NeighborAttributionMatchesGroundTruth) {
  rng r(5);
  const auto result = mapper_.run_pilot(
      vm_, service_tier::premium, hour_stamp::from_civil({2020, 4, 20}, 9), r);
  std::size_t correct = 0;
  for (const border_observation& obs : result.links) {
    const auto link = net_.topo->link_of_interface(obs.far_side);
    const link_info& l = net_.topo->link_at(*link);
    const as_index far_owner =
        net_.topo->owner_of(net_.topo->owner_of(l.a) == net_.cloud ? l.b : l.a);
    if (net_.topo->as_at(far_owner).number == obs.neighbor) ++correct;
  }
  // Attribution through the next-hop heuristic is correct in the vast
  // majority of cases (multi-AS hand-offs can blur it).
  EXPECT_GT(static_cast<double>(correct) / result.links.size(), 0.9);
}

TEST_F(BdrmapTest, ContainsLookup) {
  rng r(6);
  bdrmap_result result;
  const endpoint dst = planner_.endpoint_of_host(net_.vantage_points[0]);
  const route_path p = planner_.from_cloud(vm_, dst, service_tier::premium);
  mapper_.absorb(
      probe_.traceroute(p, hour_stamp::from_civil({2020, 4, 20}, 9), r),
      result);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_TRUE(result.contains(result.links[0].far_side));
  EXPECT_FALSE(result.contains(ipv4_addr::parse("203.0.113.1")));
}

}  // namespace
}  // namespace clasp

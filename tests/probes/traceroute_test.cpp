#include "probes/traceroute.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace clasp {
namespace {

using ::clasp::testing::small_internet;

class TracerouteTest : public ::testing::Test {
 protected:
  TracerouteTest()
      : net_(small_internet()),
        planner_(&net_),
        view_(&net_),
        probe_(&planner_, &view_, /*nonresponse_prob=*/0.0) {
    const city_id region = net_.geo->city_by_name("Ashburn, VA").id;
    const auto router = net_.topo->router_of(net_.cloud, region);
    vm_ = endpoint{net_.cloud, region,
                   net_.topo->router_at(*router).loopback, std::nullopt};
    src_ = planner_.endpoint_of_host(net_.vantage_points[3]);
    path_ = planner_.to_cloud(src_, vm_, service_tier::premium);
  }

  internet& net_;
  route_planner planner_;
  network_view view_;
  prober probe_;
  endpoint vm_, src_;
  route_path path_;
};

TEST_F(TracerouteTest, DependenciesValidated) {
  EXPECT_THROW(prober(nullptr, &view_), invalid_argument_error);
  EXPECT_THROW(prober(&planner_, nullptr), invalid_argument_error);
  EXPECT_THROW(prober(&planner_, &view_, 1.5), invalid_argument_error);
}

TEST_F(TracerouteTest, HopCountMatchesRouters) {
  rng r(1);
  const auto trace =
      probe_.traceroute(path_, hour_stamp::from_civil({2020, 6, 1}, 10), r);
  // No dst host on a PoP endpoint: one hop per router.
  EXPECT_EQ(trace.hops.size(), path_.routers.size());
  EXPECT_TRUE(trace.reached);
  EXPECT_EQ(trace.src, src_.addr);
  EXPECT_EQ(trace.dst, vm_.addr);
}

TEST_F(TracerouteTest, TtlsAreSequential) {
  rng r(2);
  const auto trace =
      probe_.traceroute(path_, hour_stamp::from_civil({2020, 6, 1}, 10), r);
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    EXPECT_EQ(trace.hops[i].ttl, i + 1);
  }
}

TEST_F(TracerouteTest, AllHopsRespondWhenProbIsZero) {
  rng r(3);
  const auto trace =
      probe_.traceroute(path_, hour_stamp::from_civil({2020, 6, 1}, 10), r);
  for (const auto& hop : trace.hops) {
    EXPECT_TRUE(hop.address.has_value());
  }
}

TEST_F(TracerouteTest, NonresponseProbabilityDropsHops) {
  prober flaky(&planner_, &view_, 0.5);
  rng r(4);
  std::size_t missing = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    const auto trace = flaky.traceroute(
        path_, hour_stamp::from_civil({2020, 6, 1}, 10), r);
    for (const auto& hop : trace.hops) {
      ++total;
      if (!hop.address) ++missing;
    }
  }
  const double frac = static_cast<double>(missing) / total;
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);
}

TEST_F(TracerouteTest, HopAddressesBelongToHopRouters) {
  rng r(5);
  const auto trace =
      probe_.traceroute(path_, hour_stamp::from_civil({2020, 6, 1}, 10), r);
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    ASSERT_TRUE(trace.hops[i].address.has_value());
    const auto router = net_.topo->router_of_interface(*trace.hops[i].address);
    ASSERT_TRUE(router.has_value());
    EXPECT_EQ(*router, path_.routers[i]);
  }
}

TEST_F(TracerouteTest, RttsGrowAlongThePath) {
  rng r(6);
  const auto trace =
      probe_.traceroute(path_, hour_stamp::from_civil({2020, 6, 1}, 4), r);
  // Jitter can reorder adjacent hops slightly; compare first vs last.
  ASSERT_GE(trace.hops.size(), 2u);
  EXPECT_LT(trace.hops.front().rtt.value, trace.hops.back().rtt.value);
}

TEST_F(TracerouteTest, DestinationHostAppearsAsFinalHop) {
  // Traceroute toward an actual server host.
  const route_path p =
      planner_.from_cloud(vm_, src_, service_tier::premium);
  rng r(7);
  const auto trace =
      probe_.traceroute(p, hour_stamp::from_civil({2020, 6, 1}, 10), r);
  ASSERT_TRUE(trace.reached);
  EXPECT_EQ(trace.hops.size(), p.routers.size() + 1);
  EXPECT_EQ(trace.hops.back().address, src_.addr);
}

TEST_F(TracerouteTest, PingTracksPathRtt) {
  rng r(8);
  const hour_stamp t = hour_stamp::from_civil({2020, 6, 1}, 4);
  const path_metrics m = view_.evaluate(path_, t);
  for (int i = 0; i < 10; ++i) {
    const millis p = probe_.ping(path_, t, r);
    EXPECT_GE(p.value, m.rtt.value);
    EXPECT_LT(p.value, m.rtt.value + 30.0);
  }
}

TEST_F(TracerouteTest, AliasResolutionGroundTruth) {
  alias_resolver resolver(net_.topo.get(), /*miss_prob=*/0.0);
  rng r(9);
  // Any router interface resolves to all of that router's interfaces.
  const router_info& router = net_.topo->router_at(path_.routers[1]);
  const auto aliases = resolver.aliases_of(router.loopback, r);
  EXPECT_EQ(aliases.size(), net_.topo->interfaces_of(router.index).size());
  EXPECT_TRUE(resolver.same_router(aliases.front(), aliases.back(), r));
}

TEST_F(TracerouteTest, AliasResolutionMissesWithProbability) {
  alias_resolver resolver(net_.topo.get(), /*miss_prob=*/1.0);
  rng r(10);
  const router_info& router = net_.topo->router_at(path_.routers[1]);
  const auto aliases = resolver.aliases_of(router.loopback, r);
  EXPECT_EQ(aliases.size(), 1u);  // only itself
  EXPECT_FALSE(resolver.same_router(router.loopback, router.loopback, r));
}

TEST_F(TracerouteTest, UnknownAddressHasNoAliases) {
  alias_resolver resolver(net_.topo.get(), 0.0);
  rng r(11);
  const auto aliases = resolver.aliases_of(ipv4_addr::parse("203.0.113.7"), r);
  EXPECT_EQ(aliases.size(), 1u);
}

}  // namespace
}  // namespace clasp

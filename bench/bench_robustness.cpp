// Robustness check: headline numbers across seeds, and campaign health
// under deterministic fault injection.
//
// Part 1 — every substrate draw (topology, load, placement) hangs off one
// seed; this bench re-runs the Table-1 selection and the H=0.5 congestion
// shares for three different worlds and prints the spread, demonstrating
// that the paper-shaped results are properties of the model, not of one
// lucky seed.
//
// Part 2 — the fault sweep: the same topology campaign replayed with the
// fault planner off, at the "low" preset and at the "high" preset. For
// each rate it reports series completeness and the V_H detector's
// precision/recall against planted ground truth, and writes the numbers
// to BENCH_robustness.json so CI can assert the sweep ran. `--fast`
// shrinks the substrate and window for the CI smoke job.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench_support.hpp"
#include "clasp/analysis.hpp"
#include "netsim/faults.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;
using namespace clasp::bench;

struct sweep_point {
  std::string preset;
  double mean_completeness{0.0};
  double precision{0.0};
  double recall{0.0};
  std::size_t tests_run{0};
  std::size_t total_retries{0};
  std::size_t failed_tests{0};
  std::size_t withdrawn_servers{0};
  std::size_t vm_redeploys{0};
  std::size_t vm_downtime_hours{0};
  std::size_t excluded_servers{0};  // completeness < 0.8
};

platform_config sweep_config(bool fast, const std::string& preset) {
  platform_config cfg;
  if (fast) {
    // ~1/8-scale substrate: enough fleet for churn/preemption to land,
    // cheap enough for a CI smoke run.
    cfg.internet.seed = 777;
    cfg.internet.regional_isp_count = 120;
    cfg.internet.hosting_count = 80;
    cfg.internet.business_count = 150;
    cfg.internet.education_count = 30;
    cfg.internet.large_isp_count = 20;
    cfg.internet.vantage_point_count = 120;
    cfg.servers.us_server_target = 120;
    cfg.servers.global_server_target = 600;
    cfg.topology_budgets = {{"us-west1", 40}};
  } else {
    cfg.internet.seed = 42;
  }
  cfg.campaign_faults = fault_config::preset(preset);
  return cfg;
}

sweep_point run_sweep_point(bool fast, const std::string& preset,
                            const hour_range& window) {
  clasp_platform platform(sweep_config(fast, preset));
  campaign_runner& campaign =
      platform.start_topology_campaign("us-west1", window);
  campaign.run();

  sweep_point point;
  point.preset = preset;
  point.tests_run = campaign.tests_run();

  const campaign_health health = campaign.health();
  point.mean_completeness = health.mean_completeness();
  point.total_retries = health.total_retries;
  point.failed_tests = health.failed_tests;
  point.withdrawn_servers = health.withdrawn_servers;
  point.vm_redeploys = health.vm_redeploys;
  point.vm_downtime_hours = health.vm_downtime_hours;
  point.excluded_servers = health.low_completeness_servers(0.8).size();

  // Detector precision/recall against planted ground truth, aggregated
  // over every server that kept reporting.
  detector_validation total;
  const auto data = platform.download_series("topology", "us-west1");
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const ts_series* gt =
        platform.store().find("gt_episode", data.series[i]->tags());
    if (gt == nullptr || data.series[i]->size() == 0) continue;
    const detector_validation v =
        validate_detector(*data.series[i], *gt, data.tz[i], 0.5);
    total.true_positive += v.true_positive;
    total.false_positive += v.false_positive;
    total.false_negative += v.false_negative;
    total.true_negative += v.true_negative;
  }
  point.precision = total.precision();
  point.recall = total.recall();
  return point;
}

// Wall-clock cost of durability: the same campaign with checkpointing
// off vs. on at the default daily cadence, plus one kill + resume leg.
//
// Two percentages are reported. `replay_overhead_pct` compares sim
// wall-clock directly — but the simulator compresses a 3600-second hour
// into ~100 microseconds, so checkpoint I/O that is invisible in a real
// deployment is magnified ~10^7x against the replay baseline and the
// raw ratio says nothing about the deployed platform. The asserted
// number is `deployed_overhead_pct`: the measured durability I/O per
// 24-hour cadence interval over the 24 real-time hours a deployed
// campaign spends producing it, which is what the <5% target means for
// a multi-month measurement campaign.
struct checkpoint_overhead {
  double baseline_seconds{0.0};
  double durable_seconds{0.0};
  double replay_overhead_pct{0.0};    // sim wall-clock, time-compressed
  double deployed_overhead_pct{0.0};  // durability I/O vs real-time hours
  double resume_seconds{0.0};  // resume at mid-window, run to the end
  bool output_identical{false};
  unsigned every_hours{24};
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

checkpoint_overhead run_checkpoint_overhead(bool fast,
                                            const hour_range& window) {
  checkpoint_overhead result;
  const std::string root =
      (std::filesystem::temp_directory_path() / "clasp_bench_ckpt").string();
  std::filesystem::remove_all(root);

  std::size_t baseline_tests = 0;
  double baseline_cost = 0.0;
  // Two timed passes each, alternating, keeping the minimum: checkpoint
  // I/O here is microseconds-scale, so scheduler noise dominates a
  // single-shot measurement.
  for (int pass = 0; pass < 2; ++pass) {
    {
      const auto t0 = std::chrono::steady_clock::now();
      clasp_platform platform(sweep_config(fast, "low"));
      campaign_runner& campaign =
          platform.start_topology_campaign("us-west1", window);
      campaign.run();
      const double s = seconds_since(t0);
      if (pass == 0 || s < result.baseline_seconds) {
        result.baseline_seconds = s;
      }
      baseline_tests = campaign.tests_run();
      baseline_cost = platform.cloud().costs().total();
    }
    {
      std::filesystem::remove_all(root);
      platform_config cfg = sweep_config(fast, "low");
      cfg.campaign_checkpoint_dir = root;
      cfg.campaign_checkpoint_every_hours = result.every_hours;
      const auto t0 = std::chrono::steady_clock::now();
      clasp_platform platform(cfg);
      campaign_runner& campaign =
          platform.start_topology_campaign("us-west1", window);
      campaign.run();
      const double s = seconds_since(t0);
      if (pass == 0 || s < result.durable_seconds) result.durable_seconds = s;
      result.output_identical =
          campaign.tests_run() == baseline_tests &&
          platform.cloud().costs().total() == baseline_cost;
    }
  }
  result.replay_overhead_pct =
      100.0 * (result.durable_seconds - result.baseline_seconds) /
      result.baseline_seconds;
  // Durability seconds per cadence interval, over the interval's
  // real-time duration (24 simulated hours = 24 wall-clock hours when
  // deployed). Clamp at zero: the difference of two timed runs is noisy.
  const double durability_seconds =
      std::max(0.0, result.durable_seconds - result.baseline_seconds);
  const double intervals = static_cast<double>(window.count()) /
                           static_cast<double>(result.every_hours);
  result.deployed_overhead_pct =
      100.0 * (durability_seconds / intervals) /
      (static_cast<double>(result.every_hours) * 3600.0);

  // Kill at mid-window, then resume in a fresh platform and finish.
  std::filesystem::remove_all(root);
  {
    platform_config cfg = sweep_config(fast, "low");
    cfg.campaign_checkpoint_dir = root;
    cfg.campaign_checkpoint_every_hours = result.every_hours;
    clasp_platform platform(cfg);
    campaign_runner& campaign =
        platform.start_topology_campaign("us-west1", window);
    campaign.run_until(window.begin_at + window.count() / 2);
  }
  {
    platform_config cfg = sweep_config(fast, "low");
    cfg.campaign_checkpoint_dir = root;
    cfg.campaign_checkpoint_every_hours = result.every_hours;
    const auto t0 = std::chrono::steady_clock::now();
    clasp_platform platform(cfg);
    campaign_runner& campaign =
        platform.start_topology_campaign("us-west1", window);
    campaign.resume(campaign.config().checkpoint_dir);
    campaign.run();
    result.resume_seconds = seconds_since(t0);
    result.output_identical =
        result.output_identical && campaign.tests_run() == baseline_tests &&
        platform.cloud().costs().total() == baseline_cost;
  }
  std::filesystem::remove_all(root);
  return result;
}

void write_json(const std::vector<sweep_point>& points, bool fast,
                std::size_t window_hours, const checkpoint_overhead& ckpt) {
  std::ofstream out("BENCH_robustness.json");
  out << "{\n  \"bench\": \"robustness\",\n"
      << "  \"fast\": " << (fast ? "true" : "false") << ",\n"
      << "  \"window_hours\": " << window_hours << ",\n"
      << "  \"checkpoint\": {"
      << "\"every_hours\": " << ckpt.every_hours
      << ", \"baseline_seconds\": " << format_double(ckpt.baseline_seconds, 4)
      << ", \"durable_seconds\": " << format_double(ckpt.durable_seconds, 4)
      << ", \"replay_overhead_pct\": "
      << format_double(ckpt.replay_overhead_pct, 2)
      << ", \"deployed_overhead_pct\": "
      << format_double(ckpt.deployed_overhead_pct, 6)
      << ", \"resume_seconds\": " << format_double(ckpt.resume_seconds, 4)
      << ", \"output_identical\": "
      << (ckpt.output_identical ? "true" : "false") << "},\n"
      << "  \"fault_sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const sweep_point& p = points[i];
    out << "    {\"preset\": \"" << p.preset << "\""
        << ", \"mean_completeness\": " << format_double(p.mean_completeness, 4)
        << ", \"precision\": " << format_double(p.precision, 4)
        << ", \"recall\": " << format_double(p.recall, 4)
        << ", \"tests_run\": " << p.tests_run
        << ", \"total_retries\": " << p.total_retries
        << ", \"failed_tests\": " << p.failed_tests
        << ", \"withdrawn_servers\": " << p.withdrawn_servers
        << ", \"vm_redeploys\": " << p.vm_redeploys
        << ", \"vm_downtime_hours\": " << p.vm_downtime_hours
        << ", \"excluded_servers\": " << p.excluded_servers << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void run_seed_spread() {
  print_header("Robustness — headline numbers across seeds",
               "shape must hold for any seed, not just the default");

  const std::uint64_t seeds[] = {42, 1337, 90210};
  text_table table({"seed", "pilot links (us-west1)", "coverage (us-west2)",
                    "shared interconnects", "days>V@0.5", "hours>V_H@0.5",
                    "elbow H"});

  for (const std::uint64_t seed : seeds) {
    clasp_platform platform = make_platform(seed);
    const auto& west1 = platform.select_topology("us-west1");
    const auto& west2 = platform.select_topology("us-west2");

    // One month of us-west1 data for the detector numbers.
    const hour_range month{hour_stamp::from_civil({2020, 5, 1}, 0),
                           hour_stamp::from_civil({2020, 6, 1}, 0)};
    platform.start_topology_campaign("us-west1", month).run();
    const auto data = platform.download_series("topology", "us-west1");
    const threshold_sweep sweep = sweep_thresholds(data.series, data.tz);

    table.add_row({std::to_string(seed),
                   std::to_string(west1.pilot.links.size()),
                   format_double(100.0 * west2.coverage(), 1) + "%",
                   format_double(100.0 * west1.shared_interconnect_fraction,
                                 1) + "%",
                   format_double(100.0 * sweep.day_fraction[10], 1) + "%",
                   format_double(100.0 * sweep.hour_fraction[10], 2) + "%",
                   format_double(choose_threshold_elbow(sweep), 2)});
  }
  table.print(std::cout);

  std::printf("\npaper bands: pilot 5.3-6.6k; coverage 20.7%% (us-west2); "
              "shared 75.5-91.6%%; days 11-30%%; hours 1.3-3%%; elbow 0.5\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  // The seed spread needs three full-scale worlds; skip it in the CI
  // smoke run.
  if (!fast) run_seed_spread();

  print_header("Robustness — campaign health under fault injection",
               "detector precision/recall must hold through realistic churn");

  // 240 hours regardless of --fast: the precision/recall estimates need
  // enough labeled hours that the 2-point band measures fault impact,
  // not small-sample noise (--fast shrinks the substrate instead).
  const hour_stamp t0 = hour_stamp::from_civil({2020, 5, 1}, 0);
  const hour_range window{t0, t0 + 240};

  std::vector<sweep_point> points;
  text_table table({"faults", "completeness", "precision", "recall",
                    "retries", "failed", "withdrawn", "redeploys",
                    "down hrs", "excluded<80%"});
  for (const char* preset : {"off", "low", "high"}) {
    const sweep_point p = run_sweep_point(fast, preset, window);
    points.push_back(p);
    table.add_row({p.preset,
                   format_double(100.0 * p.mean_completeness, 2) + "%",
                   format_double(p.precision, 3), format_double(p.recall, 3),
                   std::to_string(p.total_retries),
                   std::to_string(p.failed_tests),
                   std::to_string(p.withdrawn_servers),
                   std::to_string(p.vm_redeploys),
                   std::to_string(p.vm_downtime_hours),
                   std::to_string(p.excluded_servers)});
    std::fprintf(stderr, "[bench] faults=%s: %zu tests, completeness %.3f\n",
                 preset, p.tests_run, p.mean_completeness);
  }
  table.print(std::cout);

  print_header("Robustness — checkpoint/resume overhead",
               "daily checkpoints must cost <5% wall-clock and not perturb "
               "the output");
  const checkpoint_overhead ckpt = run_checkpoint_overhead(fast, window);
  std::printf("baseline %.3fs, durable(every=%u) %.3fs -> replay overhead "
              "%.2f%% (time-compressed); deployed overhead %.6f%%; "
              "resume leg %.3fs; output identical: %s\n",
              ckpt.baseline_seconds, ckpt.every_hours, ckpt.durable_seconds,
              ckpt.replay_overhead_pct, ckpt.deployed_overhead_pct,
              ckpt.resume_seconds, ckpt.output_identical ? "yes" : "NO");

  write_json(points, fast, window.count(), ckpt);

  std::printf("\nexpectation: \"low\" precision/recall within 2 points of "
              "\"off\"; wrote BENCH_robustness.json\n");
  const double dp = std::abs(points[1].precision - points[0].precision);
  const double dr = std::abs(points[1].recall - points[0].recall);
  if (dp >= 0.02 || dr >= 0.02) {
    std::fprintf(stderr, "[bench] WARNING: low-rate drift precision %.4f "
                 "recall %.4f exceeds the 2-point band\n", dp, dr);
    return 1;
  }
  if (!ckpt.output_identical) {
    std::fprintf(stderr,
                 "[bench] WARNING: durable/resumed output diverged from the "
                 "plain run\n");
    return 1;
  }
  if (ckpt.deployed_overhead_pct >= 5.0) {
    std::fprintf(stderr, "[bench] WARNING: deployed checkpoint overhead "
                 "%.6f%% exceeds the 5%% budget\n",
                 ckpt.deployed_overhead_pct);
    return 1;
  }
  return 0;
}

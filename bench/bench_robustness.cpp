// Robustness check: the reproduction's headline numbers across seeds.
//
// Every substrate draw (topology, load, placement) hangs off one seed;
// this bench re-runs the Table-1 selection and the H=0.5 congestion
// shares for three different worlds and prints the spread, demonstrating
// that the paper-shaped results are properties of the model, not of one
// lucky seed.
#include "bench_support.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  print_header("Robustness — headline numbers across seeds",
               "shape must hold for any seed, not just the default");

  const std::uint64_t seeds[] = {42, 1337, 90210};
  text_table table({"seed", "pilot links (us-west1)", "coverage (us-west2)",
                    "shared interconnects", "days>V@0.5", "hours>V_H@0.5",
                    "elbow H"});

  for (const std::uint64_t seed : seeds) {
    clasp_platform platform = make_platform(seed);
    const auto& west1 = platform.select_topology("us-west1");
    const auto& west2 = platform.select_topology("us-west2");

    // One month of us-west1 data for the detector numbers.
    const hour_range month{hour_stamp::from_civil({2020, 5, 1}, 0),
                           hour_stamp::from_civil({2020, 6, 1}, 0)};
    platform.start_topology_campaign("us-west1", month).run();
    const auto data = platform.download_series("topology", "us-west1");
    const threshold_sweep sweep = sweep_thresholds(data.series, data.tz);

    table.add_row({std::to_string(seed),
                   std::to_string(west1.pilot.links.size()),
                   format_double(100.0 * west2.coverage(), 1) + "%",
                   format_double(100.0 * west1.shared_interconnect_fraction,
                                 1) + "%",
                   format_double(100.0 * sweep.day_fraction[10], 1) + "%",
                   format_double(100.0 * sweep.hour_fraction[10], 2) + "%",
                   format_double(choose_threshold_elbow(sweep), 2)});
  }
  table.print(std::cout);

  std::printf("\npaper bands: pilot 5.3-6.6k; coverage 20.7%% (us-west2); "
              "shared 75.5-91.6%%; days 11-30%%; hours 1.3-3%%; elbow 0.5\n");
  return 0;
}

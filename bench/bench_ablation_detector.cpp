// Ablation (beyond the paper): validating the V_H congestion detector
// against the substrate's planted ground truth, which the real
// measurement could never observe.
//
//  * precision/recall of the paper's detector as H sweeps 0.1..0.9,
//  * the same for the autocorrelation-gated detector the paper proposes
//    as future work (§5).
#include "bench_support.hpp"
#include "clasp/hmm.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;

struct totals {
  std::size_t tp{0}, fp{0}, fn{0}, tn{0};

  void add(const detector_validation& v) {
    tp += v.true_positive;
    fp += v.false_positive;
    fn += v.false_negative;
    tn += v.true_negative;
  }
  double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
};

}  // namespace

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();
  run_topology_campaigns(platform, {"us-east1", "us-west1"});

  print_header("Ablation — detector validation against planted episodes",
               "not in the paper: ground truth is only available in the "
               "simulator");

  const char* regions[] = {"us-east1", "us-west1"};

  std::printf("\n# V_H detector: H precision recall flagged_fraction\n");
  for (double h = 0.1; h <= 0.91; h += 0.1) {
    totals t;
    std::size_t flagged = 0, hours = 0;
    for (const char* region : regions) {
      const auto data = platform.download_series("topology", region);
      for (std::size_t i = 0; i < data.series.size(); ++i) {
        tag_set tags = data.series[i]->tags();
        const ts_series* gt = platform.store().find("gt_episode", tags);
        if (gt == nullptr) continue;
        t.add(validate_detector(*data.series[i], *gt, data.tz[i], h));
        for (const hour_label& l :
             intraday_labels(*data.series[i], data.tz[i], h)) {
          ++hours;
          flagged += l.congested ? 1 : 0;
        }
      }
    }
    std::printf("%.1f %.3f %.3f %.4f\n", h, t.precision(), t.recall(),
                static_cast<double>(flagged) / static_cast<double>(hours));
  }

  std::printf("\n# ACF-gated detector (future work, §5): "
              "acf_gate precision recall\n");
  for (double gate = 0.0; gate <= 0.51; gate += 0.125) {
    totals t;
    for (const char* region : regions) {
      const auto data = platform.download_series("topology", region);
      for (std::size_t i = 0; i < data.series.size(); ++i) {
        tag_set tags = data.series[i]->tags();
        const ts_series* gt = platform.store().find("gt_episode", tags);
        if (gt == nullptr) continue;
        // Evaluate the ACF detector's labels against ground truth.
        std::unordered_map<std::int64_t, bool> truth;
        for (const ts_point& p : gt->points()) {
          truth[p.at.hours_since_epoch()] = p.value > 0.5;
        }
        detector_validation v;
        for (const hour_label& l :
             acf_detector_labels(*data.series[i], data.tz[i], gate, 0.5)) {
          const auto it = truth.find(l.at.hours_since_epoch());
          if (it == truth.end()) continue;
          if (l.congested && it->second) ++v.true_positive;
          else if (l.congested && !it->second) ++v.false_positive;
          else if (!l.congested && it->second) ++v.false_negative;
          else ++v.true_negative;
        }
        t.add(v);
      }
    }
    std::printf("%.3f %.3f %.3f\n", gate, t.precision(), t.recall());
  }

  std::printf("\n# latency-inflation detector (the RIPE-Atlas-style "
              "alternative §2 warns about): threshold precision recall\n");
  for (double thr = 0.25; thr <= 2.01; thr *= 2.0) {
    totals t;
    for (const char* region : regions) {
      const auto lat = platform.download_series("topology", region,
                                                "latency_ms");
      for (std::size_t i = 0; i < lat.series.size(); ++i) {
        tag_set tags = lat.series[i]->tags();
        const ts_series* gt = platform.store().find("gt_episode", tags);
        if (gt == nullptr) continue;
        std::unordered_map<std::int64_t, bool> truth;
        for (const ts_point& p : gt->points()) {
          truth[p.at.hours_since_epoch()] = p.value > 0.5;
        }
        detector_validation v;
        for (const hour_label& l :
             latency_inflation_labels(*lat.series[i], lat.tz[i], thr)) {
          const auto it = truth.find(l.at.hours_since_epoch());
          if (it == truth.end()) continue;
          if (l.congested && it->second) ++v.true_positive;
          else if (l.congested && !it->second) ++v.false_positive;
          else if (!l.congested && it->second) ++v.false_negative;
          else ++v.true_negative;
        }
        t.add(v);
      }
    }
    std::printf("%.2f %.3f %.3f\n", thr, t.precision(), t.recall());
  }

  std::printf("\n# HMM detector (future work, §5): two-state Gaussian HMM "
              "per series\n");
  {
    totals t;
    std::size_t usable = 0, series_count = 0;
    for (const char* region : regions) {
      const auto data = platform.download_series("topology", region);
      for (std::size_t i = 0; i < data.series.size(); ++i) {
        ++series_count;
        tag_set tags = data.series[i]->tags();
        const ts_series* gt = platform.store().find("gt_episode", tags);
        if (gt == nullptr) continue;
        const hmm_detection det = hmm_detector(*data.series[i], data.tz[i]);
        if (det.usable) ++usable;
        std::unordered_map<std::int64_t, bool> truth;
        for (const ts_point& p : gt->points()) {
          truth[p.at.hours_since_epoch()] = p.value > 0.5;
        }
        detector_validation v;
        const auto& points = data.series[i]->points();
        for (std::size_t k = 0;
             k < points.size() && k < det.congested.size(); ++k) {
          const auto it = truth.find(points[k].at.hours_since_epoch());
          if (it == truth.end()) continue;
          if (det.congested[k] && it->second) ++v.true_positive;
          else if (det.congested[k] && !it->second) ++v.false_positive;
          else if (!det.congested[k] && it->second) ++v.false_negative;
          else ++v.true_negative;
        }
        t.add(v);
      }
    }
    std::printf("usable fits: %zu/%zu  precision %.3f  recall %.3f\n",
                usable, series_count, t.precision(), t.recall());
  }

  std::printf("\ninterpretation: the paper's H=0.5 sits near the precision/"
              "recall knee; the ACF gate trades recall for precision on "
              "noisy-but-uncongested series; the HMM adds temporal "
              "persistence and per-series adaptation.\n");
  return 0;
}

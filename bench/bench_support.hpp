// Shared setup for the experiment benches.
//
// Each bench binary reproduces one table or figure of the paper at full
// scale: the default internet (~6.7k ASes), the full server fleet
// (~11k servers, ~1.3k U.S.), and the paper's measurement windows
// (May-Sep 2020 topology campaign, Aug-Sep differential campaign).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "clasp/platform.hpp"
#include "util/table.hpp"

namespace clasp::bench {

// The five Table-1 regions, in the paper's row order.
inline const std::vector<std::string>& table1_regions() {
  static const std::vector<std::string> kRegions = {
      "us-west1", "us-west2", "us-east1", "us-east4", "us-central1"};
  return kRegions;
}

// The six Fig-2 regions (Table 1 plus us-west4).
inline const std::vector<std::string>& fig2_regions() {
  static const std::vector<std::string> kRegions = {
      "us-west1", "us-west2", "us-west4", "us-east1", "us-east4",
      "us-central1"};
  return kRegions;
}

// The three differential regions.
inline const std::vector<std::string>& differential_regions() {
  static const std::vector<std::string> kRegions = {"us-central1", "us-east1",
                                                    "europe-west1"};
  return kRegions;
}

inline clasp_platform make_platform(std::uint64_t seed = 42) {
  platform_config cfg;
  cfg.internet.seed = seed;
  return clasp_platform(cfg);
}

// Run the full topology campaign for the given regions (deploys VMs, runs
// every hour of the window). Returns the runners.
inline std::vector<campaign_runner*> run_topology_campaigns(
    clasp_platform& platform, const std::vector<std::string>& regions,
    hour_range window = topology_campaign_window()) {
  std::vector<campaign_runner*> runners;
  for (const std::string& region : regions) {
    campaign_runner& r = platform.start_topology_campaign(region, window);
    r.run();
    runners.push_back(&r);
    std::fprintf(stderr, "[bench] %s: %zu servers, %zu tests\n",
                 region.c_str(), r.session_count(), r.tests_run());
  }
  return runners;
}

inline std::pair<campaign_runner*, campaign_runner*> run_differential_campaign(
    clasp_platform& platform, const std::string& region,
    hour_range window = differential_campaign_window()) {
  auto pair = platform.start_differential_campaign(region, window);
  pair.first->run();
  pair.second->run();
  std::fprintf(stderr, "[bench] %s differential: %zu servers x2 tiers\n",
               region.c_str(), pair.first->session_count());
  return pair;
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace clasp::bench

// Fig. 2: percentage of congested s-days (2a) and s-hours (2b) vs the
// variability threshold H, per region, ingress direction.
//
// Paper: at H=0.25 the congested s-day share is 71.2% (us-west1) to 89.7%
// (us-west4); at H=0.5 it falls to 11-30%, and 1.3-3% of s-hours are
// congested. The elbow method lands on H=0.5.
#include "bench_support.hpp"
#include "util/strings.hpp"

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();
  run_topology_campaigns(platform, fig2_regions());

  print_header("Fig. 2 — Congested s-days / s-hours vs threshold H",
               "H=0.25: 71-90%% of days; H=0.5: 11-30%% days, 1.3-3%% hours; "
               "elbow at 0.5");

  std::printf("\n# Fig 2a: fraction of s-days with V(s,d) > H\n");
  std::printf("# Fig 2b: fraction of s-hours with V_H(s,t) > H\n\n");

  std::vector<threshold_sweep> sweeps;
  for (const std::string& region : fig2_regions()) {
    const auto data = platform.download_series("topology", region);
    sweeps.push_back(sweep_thresholds(data.series, data.tz));
  }

  // Series block: one row per threshold, one column pair per region.
  std::printf("# columns: H");
  for (const std::string& r : fig2_regions()) {
    std::printf(" day:%s hour:%s", r.c_str(), r.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < sweeps[0].thresholds.size(); ++i) {
    std::printf("%.2f", sweeps[0].thresholds[i]);
    for (const threshold_sweep& s : sweeps) {
      std::printf(" %.4f %.4f", s.day_fraction[i], s.hour_fraction[i]);
    }
    std::printf("\n");
  }

  std::printf("\nsummary at the paper's key thresholds:\n");
  text_table table({"Region", "days>V @H=0.25", "days>V @H=0.5",
                    "hours>V_H @H=0.5", "elbow H"});
  for (std::size_t r = 0; r < fig2_regions().size(); ++r) {
    const threshold_sweep& s = sweeps[r];
    // Grid is 21 points: index 5 = 0.25, index 10 = 0.5.
    table.add_row({fig2_regions()[r],
                   format_double(100.0 * s.day_fraction[5], 1) + "%",
                   format_double(100.0 * s.day_fraction[10], 1) + "%",
                   format_double(100.0 * s.hour_fraction[10], 2) + "%",
                   format_double(choose_threshold_elbow(s), 2)});
  }
  table.print(std::cout);

  std::printf("\npaper: us-west1 lowest / us-east4 highest congestion "
              "share; chosen threshold H = 0.5\n");
  return 0;
}

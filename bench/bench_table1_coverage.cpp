// Table 1: coverage of the topology-based server selection.
//
// Paper values (per region): total interdomain links found by the bdrmap
// pilot ~5.3k-6.6k; links traversed by all U.S. test servers 111-325;
// servers measured by CLASP 25-184; coverage 20.7%-69.4%. Also §3.1's
// fleet statistics (>11k global / ~1.3k U.S. servers in ~799 ASes) and
// §4's 75.5%-91.6% interconnect sharing.
#include "bench_support.hpp"
#include "util/strings.hpp"

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();

  print_header("Table 1 — Topology-based server selection coverage",
               "total links ~5.3-6.6k; traversed 111-325; measured 25-184; "
               "coverage 20.7-69.4%");

  std::printf("server fleet: %zu global, %zu U.S. across %zu U.S. ASes "
              "(paper: >11,000 / ~1,330 / 799)\n\n",
              platform.registry().size(), platform.registry().crawl("US").size(),
              platform.registry().distinct_ases("US"));

  text_table table({"Region", "Links(total)", "Links(US servers)",
                    "Servers measured", "Coverage", "Shared interconnects"});
  // Paper's reference rows for side-by-side reading.
  const struct {
    const char* region;
    int total;
    int traversed;
    int measured;
  } paper_rows[] = {
      {"us-west1", 5293, 325, 106}, {"us-west2", 6609, 121, 25},
      {"us-east1", 6217, 265, 184}, {"us-east4", 5255, 111, 40},
      {"us-central1", 6582, 144, 56},
  };

  for (const auto& row : paper_rows) {
    const topology_selection_result& sel = platform.select_topology(row.region);
    table.add_row({row.region, std::to_string(sel.pilot.links.size()),
                   std::to_string(sel.links_traversed_by_servers),
                   std::to_string(sel.selected.size()),
                   format_double(100.0 * sel.coverage(), 1) + "%",
                   format_double(100.0 * sel.shared_interconnect_fraction, 1) +
                       "%"});
  }
  table.print(std::cout);

  std::printf("\npaper reference rows:\n");
  text_table ref({"Region", "Links(total)", "Links(US servers)",
                  "Servers measured", "Coverage"});
  for (const auto& row : paper_rows) {
    ref.add_row({row.region, std::to_string(row.total),
                 std::to_string(row.traversed), std::to_string(row.measured),
                 format_double(100.0 * row.measured / row.traversed, 1) + "%"});
  }
  ref.print(std::cout);
  return 0;
}

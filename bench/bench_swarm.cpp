// Vantage-swarm sweep: the §3.1 differential pre-test re-run on the
// churn-driven community swarm at "off" (the paper's fixed panel), "low"
// (background community churn) and "high" (adversarial churn + tight
// per-probe budgets).
//
// The claim under test: the coverage-aware scheduler keeps the pre-test's
// ⟨city, AS⟩ latency-class classification stable under realistic churn.
// For every tuple classified both by the fixed panel and by a churned
// swarm, the bench computes the ordinal class shift
// (premium_lower / comparable / standard_lower) and gates the "low"
// preset at a maximum shift of one class. Coverage, credit and
// substitution aggregates go to BENCH_swarm.json so CI can assert the
// sweep ran and re-apply the gate (tools/check_bench_swarm.py). `--fast`
// shrinks the substrate for the CI smoke job.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_support.hpp"
#include "clasp/differential.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;
using namespace clasp::bench;

struct sweep_point {
  std::string preset;
  swarm_report swarm;
  std::size_t tuples_measured{0};
  std::size_t tuples_incomplete{0};
  std::size_t candidates{0};
  std::size_t selected{0};
  bool platform_exhausted{false};
  // Classification drift vs. the fixed-panel baseline, over tuples
  // classified in both runs.
  std::size_t compared_tuples{0};
  std::size_t shift_histogram[3] = {0, 0, 0};  // shift 0 / 1 / 2 classes
  std::size_t max_class_shift{0};
  std::size_t lost_tuples{0};    // classified by "off", missing here
  std::size_t gained_tuples{0};  // classified here, missing in "off"
};

platform_config sweep_platform_config(bool fast) {
  platform_config cfg;
  if (fast) {
    // Same ~1/8-scale substrate as bench_robustness --fast: enough
    // vantage points that every ⟨city, AS⟩ tuple has a few swarm members
    // to substitute through, cheap enough for CI.
    cfg.internet.seed = 777;
    cfg.internet.regional_isp_count = 120;
    cfg.internet.hosting_count = 80;
    cfg.internet.business_count = 150;
    cfg.internet.education_count = 30;
    cfg.internet.large_isp_count = 20;
    cfg.internet.vantage_point_count = 120;
    cfg.servers.us_server_target = 120;
    cfg.servers.global_server_target = 600;
  } else {
    cfg.internet.seed = 42;
  }
  return cfg;
}

using tuple_key = std::pair<city_id, asn>;

std::map<tuple_key, latency_class> classify(
    const differential_selection_result& result) {
  std::map<tuple_key, latency_class> classes;
  for (const diff_candidate& c : result.candidates) {
    classes.emplace(tuple_key{c.city, c.network}, c.cls);
  }
  return classes;
}

void diff_classes(const std::map<tuple_key, latency_class>& baseline,
                  sweep_point& point,
                  const std::map<tuple_key, latency_class>& churned) {
  for (const auto& [key, cls] : churned) {
    const auto base = baseline.find(key);
    if (base == baseline.end()) {
      ++point.gained_tuples;
      continue;
    }
    const std::size_t shift = static_cast<std::size_t>(
        std::abs(static_cast<int>(cls) - static_cast<int>(base->second)));
    ++point.compared_tuples;
    ++point.shift_histogram[shift];
    if (shift > point.max_class_shift) point.max_class_shift = shift;
  }
  for (const auto& [key, cls] : baseline) {
    (void)cls;
    if (churned.find(key) == churned.end()) ++point.lost_tuples;
  }
}

void write_json(const std::vector<sweep_point>& points, bool fast,
                std::size_t rounds) {
  std::ofstream out("BENCH_swarm.json");
  out << "{\n  \"bench\": \"swarm\",\n"
      << "  \"fast\": " << (fast ? "true" : "false") << ",\n"
      << "  \"pretest_rounds\": " << rounds << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const sweep_point& p = points[i];
    const swarm_report& s = p.swarm;
    out << "    {\"preset\": \"" << p.preset << "\""
        << ", \"probe_population\": " << s.probe_population
        << ", \"mean_active\": " << format_double(s.mean_active, 2)
        << ", \"min_active\": " << s.min_active
        << ", \"joins\": " << s.joins << ", \"leaves\": " << s.leaves
        << ", \"credits_spent\": " << s.credits_spent
        << ", \"rate_limited\": " << s.rate_limited
        << ", \"substitutions\": " << s.substitutions
        << ", \"missed_rounds\": " << s.missed_rounds
        << ", \"stale_tuples\": " << s.stale_tuples
        << ", \"rounds_below_target\": " << s.rounds_below_target
        << ", \"mean_coverage\": " << format_double(s.mean_coverage, 4)
        << ", \"tuples_measured\": " << p.tuples_measured
        << ", \"tuples_incomplete\": " << p.tuples_incomplete
        << ", \"candidates\": " << p.candidates
        << ", \"selected\": " << p.selected
        << ", \"platform_exhausted\": "
        << (p.platform_exhausted ? "true" : "false")
        << ", \"compared_tuples\": " << p.compared_tuples
        << ", \"shift_histogram\": [" << p.shift_histogram[0] << ", "
        << p.shift_histogram[1] << ", " << p.shift_histogram[2] << "]"
        << ", \"max_class_shift\": " << p.max_class_shift
        << ", \"lost_tuples\": " << p.lost_tuples
        << ", \"gained_tuples\": " << p.gained_tuples << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  print_header("Vantage swarm — pre-test classification under churn",
               "§3.1 tuple classes must survive community-probe churn "
               "(±1 class at the \"low\" preset)");

  // One world, one region VM; each preset re-runs the pre-test through
  // its own private swarm (the "off" run leases the fixed panel and is
  // byte-identical to pre-swarm builds).
  clasp_platform platform(sweep_platform_config(fast));
  const std::string region = differential_regions()[0];
  const gcp_cloud::vm_id vm =
      platform.cloud().create_vm(region, service_tier::premium);
  const endpoint target = platform.cloud().vm_endpoint(vm);

  differential_config cfg;
  const std::size_t rounds =
      cfg.pretest_window.count() / cfg.probe_every_hours;

  std::vector<sweep_point> points;
  std::map<tuple_key, latency_class> baseline;
  text_table table({"swarm", "active/pop", "coverage", "missed", "stale",
                    "subs", "credits", "measured", "cand", "sel",
                    "shift 0/1/2", "max"});
  for (const char* preset : {"off", "low", "high"}) {
    differential_config run_cfg = cfg;
    run_cfg.swarm = swarm_config::preset(preset);
    differential_selector selector(&platform.planner(), &platform.view(),
                                   &platform.registry());
    rng r(42);
    const differential_selection_result result =
        selector.run(target, run_cfg, r);

    sweep_point point;
    point.preset = preset;
    point.swarm = result.swarm;
    point.tuples_measured = result.tuples_measured;
    point.tuples_incomplete = result.tuples_incomplete;
    point.candidates = result.candidates.size();
    point.selected = result.selected.size();
    point.platform_exhausted = result.platform_exhausted;
    const auto classes = classify(result);
    if (points.empty()) {
      baseline = classes;
      point.compared_tuples = classes.size();
      point.shift_histogram[0] = classes.size();
    } else {
      diff_classes(baseline, point, classes);
    }
    points.push_back(point);

    const swarm_report& s = point.swarm;
    table.add_row(
        {point.preset,
         format_double(s.mean_active, 0) + "/" +
             std::to_string(s.probe_population),
         format_double(100.0 * s.mean_coverage, 1) + "%",
         std::to_string(s.missed_rounds), std::to_string(s.stale_tuples),
         std::to_string(s.substitutions), std::to_string(s.credits_spent),
         std::to_string(point.tuples_measured),
         std::to_string(point.candidates), std::to_string(point.selected),
         std::to_string(point.shift_histogram[0]) + "/" +
             std::to_string(point.shift_histogram[1]) + "/" +
             std::to_string(point.shift_histogram[2]),
         std::to_string(point.max_class_shift)});
    std::fprintf(stderr,
                 "[bench] swarm=%s: coverage %.3f, %zu candidates, "
                 "max class shift %zu\n",
                 preset, s.mean_coverage, point.candidates,
                 point.max_class_shift);
  }
  table.print(std::cout);

  write_json(points, fast, rounds);

  std::printf("\nexpectation: \"low\" classification within one class of "
              "the fixed panel; wrote BENCH_swarm.json\n");
  const sweep_point& low = points[1];
  if (low.compared_tuples == 0) {
    std::fprintf(stderr, "[bench] WARNING: low-churn run classified no "
                 "tuple in common with the fixed panel\n");
    return 1;
  }
  if (low.max_class_shift > 1) {
    std::fprintf(stderr, "[bench] WARNING: low-churn class shift %zu "
                 "exceeds the 1-class band (%zu/%zu/%zu)\n",
                 low.max_class_shift, low.shift_histogram[0],
                 low.shift_histogram[1], low.shift_histogram[2]);
    return 1;
  }
  return 0;
}

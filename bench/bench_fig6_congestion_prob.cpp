// Fig. 6: congestion probability of ingress paths by local time of day
// for the ten most-congested servers in us-east1 (6a) and us-west1 (6b),
// and the premium-vs-standard comparison in europe-west1 (6c).
//
// Paper: probabilities mostly <0.1; Smarterbroadband degraded through the
// day; Cogent-hosted servers peak 7-11 pm; Cox shows daytime reverse-path
// congestion; three standard-tier networks (Vortex, Joister, Telstra)
// congest more than their premium counterparts.
#include "bench_support.hpp"
#include "util/strings.hpp"

#include <algorithm>

namespace {

using namespace clasp;

struct ranked_server {
  const ts_series* series;
  timezone_offset tz;
  std::string label;
  std::size_t events;
};

std::vector<ranked_server> top_congested(const clasp_platform& platform,
                                         const std::string& campaign,
                                         const std::string& region,
                                         const std::string& tier,
                                         std::size_t top_n) {
  const auto data =
      platform.download_series(campaign, region, "download_mbps", tier);
  std::vector<ranked_server> ranked;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const auto summary = summarize_server(*data.series[i], data.tz[i], 0.5);
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(data.series[i]->tag("server").value_or("0")));
    ranked.push_back({data.series[i], data.tz[i],
                      platform.registry().server(sid).name,
                      summary.congested_hours});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ranked_server& a, const ranked_server& b) {
              return a.events > b.events;
            });
  if (ranked.size() > top_n) ranked.resize(top_n);
  return ranked;
}

void print_probabilities(const std::vector<ranked_server>& servers) {
  std::printf("# columns: local_hour");
  for (const ranked_server& s : servers) std::printf(" | %s", s.label.c_str());
  std::printf("\n");
  std::vector<std::array<double, 24>> probs;
  for (const ranked_server& s : servers) {
    probs.push_back(hourly_congestion_probability(*s.series, s.tz, 0.5));
  }
  for (unsigned h = 0; h < 24; ++h) {
    std::printf("%02u", h);
    for (const auto& p : probs) std::printf(" %.3f", p[h]);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();
  run_topology_campaigns(platform, {"us-east1", "us-west1"});
  run_differential_campaign(platform, "europe-west1");

  print_header("Fig. 6 — Hourly congestion probability (top-10 servers)",
               "probability mostly <0.1; evening peaks for eyeballs/Cogent; "
               "Cox daytime; standard tier worse for Vortex/Joister/Telstra");

  std::printf("\n--- Fig 6a: us-east1 ---\n");
  print_probabilities(top_congested(platform, "topology", "us-east1", "", 10));

  std::printf("\n--- Fig 6b: us-west1 ---\n");
  const auto west = top_congested(platform, "topology", "us-west1", "", 10);
  print_probabilities(west);

  // Cox daytime + reverse-path check (§4.2: "low (<1%%) packet loss rate
  // in the upload throughput tests, indicating that congestion took place
  // on the reverse path (from ISP to cloud)").
  for (const ranked_server& s : west) {
    if (s.label.find("Cox") == std::string::npos) continue;
    const auto prob = hourly_congestion_probability(*s.series, s.tz, 0.5);
    double daytime = 0.0, evening = 0.0;
    for (unsigned h = 9; h <= 16; ++h) daytime += prob[h];
    for (unsigned h = 19; h <= 23; ++h) evening += prob[h];
    std::printf("\nCox daytime-vs-evening probability mass: %.3f vs %.3f "
                "(paper: daytime congestion on the reverse path)\n",
                daytime / 8.0, evening / 5.0);
    tag_set tags = s.series->tags();
    const ts_series* dl = platform.store().find("download_loss", tags);
    const ts_series* ul = platform.store().find("upload_loss", tags);
    if (dl != nullptr && ul != nullptr) {
      const asymmetry_summary asym =
          classify_asymmetry(*s.series, *dl, *ul, s.tz, 0.5);
      std::printf("Cox congestion direction: %zu ingress / %zu egress / "
                  "%zu both / %zu unknown hours -> %s (paper: reverse "
                  "path, ISP->cloud)\n",
                  asym.ingress_hours, asym.egress_hours, asym.both_hours,
                  asym.unknown_hours, to_string(asym.dominant()));
    }
  }

  std::printf("\n--- Fig 6c: europe-west1 premium (p) vs standard (s) ---\n");
  const auto prem =
      top_congested(platform, "diff-premium", "europe-west1", "premium", 6);
  for (const ranked_server& s : prem) {
    // Pair with the standard-tier series of the same server.
    tag_set tags = s.series->tags();
    tags["campaign"] = "diff-standard";
    tags["tier"] = "standard";
    const ts_series* stnd = platform.store().find("download_mbps", tags);
    if (stnd == nullptr) continue;
    const auto pp = hourly_congestion_probability(*s.series, s.tz, 0.5);
    const auto sp = hourly_congestion_probability(*stnd, s.tz, 0.5);
    double p_mass = 0.0, s_mass = 0.0;
    for (unsigned h = 0; h < 24; ++h) {
      p_mass += pp[h];
      s_mass += sp[h];
    }
    std::printf("%-48s premium=%.3f standard=%.3f %s\n", s.label.c_str(),
                p_mass / 24.0, s_mass / 24.0,
                s_mass > p_mass ? "<- standard more congested" : "");
  }
  return 0;
}

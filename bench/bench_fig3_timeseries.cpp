// Fig. 3: two-day download throughput time series from the Cox (Las
// Vegas) server to us-west1 with its normalized intra-day throughput
// difference, congested hours (V_H > 0.5) highlighted.
//
// Paper: multiple daytime throughput drops between 10 am and 4 pm across
// the two days, all captured by the detector.
#include "bench_support.hpp"

#include <algorithm>

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();

  // A focused campaign: only us-west1 is needed, but the full selection
  // runs so the Cox server is measured exactly as in the paper.
  run_topology_campaigns(platform, {"us-west1"});

  print_header("Fig. 3 — Two-day Cox (Las Vegas) -> us-west1 time series",
               "daytime (10am-4pm) throughput drops flagged as congested");

  // Find the Cox Las Vegas server in the measured set.
  const auto data = platform.download_series("topology", "us-west1");
  const ts_series* cox = nullptr;
  timezone_offset cox_tz{};
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const auto network = data.series[i]->tag("network").value_or("");
    const auto city = data.series[i]->tag("city").value_or("");
    if (network == "22773" && city.find("Las Vegas") != std::string::npos) {
      cox = data.series[i];
      cox_tz = data.tz[i];
    }
  }
  if (cox == nullptr) {
    // Fall back to any Cox server measured from us-west1.
    for (std::size_t i = 0; i < data.series.size(); ++i) {
      if (data.series[i]->tag("network").value_or("") == "22773") {
        cox = data.series[i];
        cox_tz = data.tz[i];
      }
    }
  }
  if (cox == nullptr) {
    std::printf("no Cox server was selected for us-west1 in this run\n");
    return 1;
  }

  // Pick the two consecutive days with the most congested hours so the
  // figure shows the phenomenon (the paper chose such a window too).
  const auto labels = intraday_labels(*cox, cox_tz, 0.5);
  std::int64_t best_day = labels.front().at.local_day_index(cox_tz);
  int best_count = -1;
  for (const hour_label& l : labels) {
    const std::int64_t day = l.at.local_day_index(cox_tz);
    int count = 0;
    for (const hour_label& m : labels) {
      const std::int64_t d = m.at.local_day_index(cox_tz);
      if ((d == day || d == day + 1) && m.congested) ++count;
    }
    if (count > best_count) {
      best_count = count;
      best_day = day;
    }
  }

  std::printf("# server: %s (local tz UTC%+d)\n",
              cox->tag("city").value_or("?").c_str(),
              cox_tz.hours_east_of_utc);
  std::printf("# columns: local_day local_hour download_mbps V_H congested\n");
  std::size_t daytime_congested = 0, congested_total = 0;
  for (const hour_label& l : labels) {
    const std::int64_t day = l.at.local_day_index(cox_tz);
    if (day != best_day && day != best_day + 1) continue;
    double value = 0.0;
    for (const ts_point& p : cox->points()) {
      if (p.at == l.at) value = p.value;
    }
    const unsigned lh = l.at.local_hour_of_day(cox_tz);
    std::printf("%lld %02u %8.1f %.3f %s\n",
                static_cast<long long>(day - best_day), lh, value, l.v_h,
                l.congested ? "CONGESTED" : "-");
    if (l.congested) {
      ++congested_total;
      if (lh >= 9 && lh <= 16) ++daytime_congested;
    }
  }
  std::printf("\ncongested hours in window: %zu (%zu between 9am-4pm local)\n",
              congested_total, daytime_congested);
  std::printf("paper: drops concentrated 10am-4pm on both days\n");
  return 0;
}

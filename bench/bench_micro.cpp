// Microbenchmarks of the substrate's hot paths (google-benchmark).
//
// These are the operations that bound a full campaign's wall-clock:
// internet generation, route construction, per-hour path evaluation,
// a complete speed test, traceroute, and time-series writes.
//
// BM_CampaignHour additionally writes BENCH_campaign.json next to the
// binary: per-(workers, cached) ns/hour plus the cached-vs-uncached
// speedup ratio, for machine consumption by CI trend tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "clasp/platform.hpp"
#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "probes/traceroute.hpp"

namespace {

using namespace clasp;

// (workers, cached) -> accumulated run_hour time, for BENCH_campaign.json.
struct campaign_bench_total {
  double ns{0.0};
  std::int64_t hours{0};
};
std::map<std::pair<int, int>, campaign_bench_total>& campaign_totals() {
  static auto* totals = new std::map<std::pair<int, int>, campaign_bench_total>();
  return *totals;
}

clasp_platform& shared_platform() {
  static clasp_platform* platform = [] {
    platform_config cfg;
    return new clasp_platform(cfg);
  }();
  return *platform;
}

void BM_GenerateInternet(benchmark::State& state) {
  internet_config cfg;
  cfg.regional_isp_count = static_cast<std::size_t>(state.range(0));
  cfg.business_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    internet net = generate_internet(cfg);
    benchmark::DoNotOptimize(net.topo->link_count());
  }
  state.SetLabel(std::to_string(generate_internet(cfg).topo->as_count()) +
                 " ASes");
}
BENCHMARK(BM_GenerateInternet)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RouteConstruction(benchmark::State& state) {
  auto& p = shared_platform();
  route_planner& planner = p.planner();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const auto& vps = p.net().vantage_points;
  std::size_t i = 0;
  for (auto _ : state) {
    const endpoint src = planner.endpoint_of_host(vps[i++ % vps.size()]);
    benchmark::DoNotOptimize(
        planner.to_cloud(src, vm, service_tier::premium).routers.size());
  }
}
BENCHMARK(BM_RouteConstruction);

void BM_PathEvaluation(benchmark::State& state) {
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint src =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.view().evaluate(path, hour_stamp{h++ % 3672}).rtt.value);
  }
}
BENCHMARK(BM_PathEvaluation);

void BM_EvaluatePathFlat(benchmark::State& state) {
  // The session fast path: the route flattened once, evaluations walking
  // the contiguous hop array (no cache; compare against BM_PathEvaluation
  // for the flattening win alone).
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint src =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  network_view view(&p.net());
  const flat_path flat = view.flatten(path);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        view.evaluate(flat, hour_stamp{h++ % 3672}).rtt.value);
  }
}
BENCHMARK(BM_EvaluatePathFlat);

void BM_EvaluatePathCached(benchmark::State& state) {
  // The campaign hot loop's steady state: flat path + a prefilled
  // hour-epoch condition cache, so every hop is two table lookups.
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint src =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  network_view view(&p.net());
  const flat_path flat = view.flatten(path);
  view.link_cache().register_path(path);
  const hour_stamp at{20};  // one prefilled epoch, as within a replay hour
  view.link_cache().prefill(at);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.evaluate(flat, at).rtt.value);
  }
}
BENCHMARK(BM_EvaluatePathCached);

void BM_SpeedTest(benchmark::State& state) {
  auto& p = shared_platform();
  static gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-east1", service_tier::premium);
  const auto us = p.registry().crawl("US");
  speed_test_session session(&p.cloud(), &p.view(), vm,
                             p.registry().server(us.front()));
  rng r(1);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.run(hour_stamp{h++ % 3672}, r).download.value);
  }
}
BENCHMARK(BM_SpeedTest);

void BM_Traceroute(benchmark::State& state) {
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-west1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint dst =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path =
      p.planner().from_cloud(vm, dst, service_tier::premium);
  network_view view(&p.net());
  prober probe(&p.planner(), &view);
  rng r(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe.traceroute(path, hour_stamp{12}, r).hops.size());
  }
}
BENCHMARK(BM_Traceroute);

void BM_TsdbWrite(benchmark::State& state) {
  tsdb db;
  const tag_set tags = {{"campaign", "bench"}, {"server", "1"}};
  std::int64_t h = 0;
  for (auto _ : state) {
    db.write("download_mbps", tags, hour_stamp{h++}, 123.4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbWrite);

void BM_TsdbWriteInterned(benchmark::State& state) {
  // The campaign fast path: tag set resolved once, appends go through an
  // integer ref (compare against BM_TsdbWrite's per-point string keying).
  tsdb db;
  const series_ref ref =
      db.open_series("download_mbps", {{"campaign", "bench"}, {"server", "1"}});
  std::int64_t h = 0;
  for (auto _ : state) {
    db.write(ref, hour_stamp{h++}, 123.4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbWriteInterned);

void BM_TsdbQuery(benchmark::State& state) {
  tsdb db;
  for (int s = 0; s < 200; ++s) {
    const tag_set tags = {{"campaign", "bench"},
                          {"server", std::to_string(s)},
                          {"region", s % 2 ? "us-west1" : "us-east1"}};
    for (int h = 0; h < 100; ++h) db.write("m", tags, hour_stamp{h}, h);
  }
  tag_filter filter;
  filter.required["region"] = "us-west1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.query("m", filter).size());
  }
}
BENCHMARK(BM_TsdbQuery);

void BM_CampaignHour(benchmark::State& state) {
  // One simulated campaign hour (the unit every figure bench replays
  // thousands of times), across worker counts with the link-condition
  // cache on and off. Each configuration deploys its own fleet against
  // the shared substrate; the hour counter never rewinds so TSDB appends
  // stay time-ordered (which also guarantees an uncached configuration
  // never hits a stale prefilled epoch — the hour always moved on).
  auto& p = shared_platform();
  static const std::vector<std::size_t> servers = [&] {
    auto us = p.registry().crawl("US");
    us.resize(std::min<std::size_t>(us.size(), 64));
    return us;
  }();

  const int workers = static_cast<int>(state.range(0));
  const bool cached = state.range(1) != 0;
  // One fleet per (workers, cached) configuration, shared across the
  // library's calibration reruns: repeated deploys would keep growing the
  // platform (VMs, interned series), silently slowing whichever configs
  // happen to run later.
  static auto* runners =
      new std::map<std::pair<int, int>, std::unique_ptr<campaign_runner>>();
  static std::int64_t h = 0;
  std::unique_ptr<campaign_runner>& slot = (*runners)[{workers, cached ? 1 : 0}];
  if (!slot) {
    campaign_config cfg;
    cfg.region = "us-east1";
    cfg.label = "bench-hour-" + std::to_string(workers) +
                (cached ? "-cached" : "-uncached");
    cfg.tests_per_vm_hour = 17;  // the paper's VM budget: 4 VMs, 64 servers
    cfg.workers = static_cast<unsigned>(workers);
    cfg.link_cache = cached;
    slot = std::make_unique<campaign_runner>(&p.cloud(), &p.view(),
                                             &p.registry(), &p.store());
    slot->deploy(cfg, servers);
    // Untimed warm-up: a real replay runs thousands of hours, so the
    // metric is the steady-state hour — after the staging buffers and the
    // TSDB point vectors have reached their working capacity, not the
    // handful of allocation-heavy hours right after deploy.
    for (int i = 0; i < 64; ++i) slot->run_hour(hour_stamp{h++});
  }
  campaign_runner& runner = *slot;

  double ns = 0.0;
  std::int64_t hours = 0;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    runner.run_hour(hour_stamp{h++});
    const auto end = std::chrono::steady_clock::now();
    ns += std::chrono::duration<double, std::nano>(end - begin).count();
    ++hours;
  }
  campaign_bench_total& total = campaign_totals()[{workers, cached ? 1 : 0}];
  total.ns += ns;
  total.hours += hours;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(servers.size()));
  state.SetLabel(std::to_string(runner.vm_count()) + " VMs, " +
                 std::to_string(runner.workers()) + " workers, cache " +
                 (cached ? "on" : "off"));
}
BENCHMARK(BM_CampaignHour)->Apply([](benchmark::internal::Benchmark* b) {
  b->Args({1, 0});
  b->Args({1, 1});
  b->Args({2, 0});
  b->Args({2, 1});
  b->Args({4, 1});
  // Full hardware concurrency, unless that duplicates a config above
  // (e.g. the 1-CPU bench container, where it would re-run {1, 1} against
  // a by-then much larger store and skew the per-config averages).
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) b->Args({hw, 1});
  b->Unit(benchmark::kMillisecond)->UseRealTime();
});

void BM_DailyVariability(benchmark::State& state) {
  ts_series s("m", {});
  for (int i = 0; i < 24 * 153; ++i) {
    s.append(hour_stamp{i}, 400.0 + (i % 24) * 5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(daily_variability(s, timezone_offset{-5}).size());
  }
}
BENCHMARK(BM_DailyVariability);

// BENCH_campaign.json: [{workers, cached, ns_per_hour}, ...] plus one
// cached_vs_uncached_ratio entry per worker count measured both ways
// (uncached ns / cached ns; > 1 means the cache wins).
void write_campaign_json(const char* path) {
  const auto& totals = campaign_totals();
  if (totals.empty()) return;  // BM_CampaignHour filtered out of the run
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"BM_CampaignHour\",\n  \"runs\": [\n");
  bool first = true;
  for (const auto& [key, total] : totals) {
    if (total.hours == 0) continue;
    std::fprintf(f, "%s    {\"workers\": %d, \"cached\": %s, "
                 "\"ns_per_hour\": %.1f, \"hours\": %lld}",
                 first ? "" : ",\n", key.first,
                 key.second ? "true" : "false",
                 total.ns / static_cast<double>(total.hours),
                 static_cast<long long>(total.hours));
    first = false;
  }
  std::fprintf(f, "\n  ],\n  \"cached_vs_uncached_ratio\": {");
  first = true;
  for (const auto& [key, total] : totals) {
    if (key.second != 0 || total.hours == 0) continue;
    const auto cached_it = totals.find({key.first, 1});
    if (cached_it == totals.end() || cached_it->second.hours == 0) continue;
    const double uncached = total.ns / static_cast<double>(total.hours);
    const double cached =
        cached_it->second.ns / static_cast<double>(cached_it->second.hours);
    if (cached <= 0.0) continue;
    std::fprintf(f, "%s\"%d\": %.3f", first ? "" : ", ", key.first,
                 uncached / cached);
    first = false;
  }
  std::fprintf(f, "}\n}\n");
  std::fclose(f);
}

// --obs-overhead: A/B harness for the observability subsystem's cost.
// The same deployed fleet replays interleaved blocks of hours with
// metrics off and on (counters, spans, hour histogram — everything the
// campaign records); per-mode cost is the best round, which shrugs off
// scheduler noise the way the worst-case mean cannot. Emits
// BENCH_obs.json with the overhead percentage, a within_budget verdict
// against the 2% target, and the condition-cache hit ratio observed by
// the counters themselves.
int run_obs_overhead_bench() {
  auto& p = shared_platform();
  auto servers = p.registry().crawl("US");
  servers.resize(std::min<std::size_t>(servers.size(), 64));

  campaign_config cfg;
  cfg.region = "us-east1";
  cfg.label = "bench-obs";
  cfg.tests_per_vm_hour = 17;
  cfg.workers = 1;  // serial replay: the least noisy hour to time
  cfg.link_cache = true;
  campaign_runner runner(&p.cloud(), &p.view(), &p.registry(), &p.store());
  runner.deploy(cfg, servers);

  obs::set_enabled(false);
  obs::register_core_families();
  obs::metrics_registry::instance().reset_values();

  std::int64_t h = 0;
  // Untimed warm-up, as in BM_CampaignHour: the metric is the
  // steady-state hour, not the allocation-heavy ramp after deploy.
  for (int i = 0; i < 64; ++i) runner.run_hour(hour_stamp{h++});

  constexpr int kRounds = 12;
  constexpr int kHoursPerBlock = 32;
  const auto time_block = [&] {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kHoursPerBlock; ++i) runner.run_hour(hour_stamp{h++});
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(end - begin).count() /
           kHoursPerBlock;
  };

  // Paired rounds: each round times an off block and an on block back to
  // back, so drift (TSDB vector reallocation spikes, frequency scaling)
  // hits both sides alike; the median across rounds is the verdict, which
  // single outlier blocks cannot move.
  std::vector<double> per_round_pct;
  double best_off = 0.0, best_on = 0.0, sum_off = 0.0, sum_on = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(false);
    const double off = time_block();
    obs::set_enabled(true);
    const double on = time_block();
    per_round_pct.push_back((on - off) / off * 100.0);
    if (round == 0 || off < best_off) best_off = off;
    if (round == 0 || on < best_on) best_on = on;
    sum_off += off;
    sum_on += on;
  }
  obs::set_enabled(false);
  std::sort(per_round_pct.begin(), per_round_pct.end());
  const double median_pct =
      (per_round_pct[kRounds / 2 - 1] + per_round_pct[kRounds / 2]) / 2.0;

  const auto counters = obs::metrics_registry::instance().counters();
  const double hits =
      static_cast<double>(counters.at(obs::family::kCacheHits));
  const double misses =
      static_cast<double>(counters.at(obs::family::kCacheMisses));
  const double hit_ratio =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  const double overhead_pct = median_pct;

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"obs_overhead\",\n"
               "  \"hours_per_mode\": %d,\n"
               "  \"ns_per_hour_off\": %.1f,\n"
               "  \"ns_per_hour_on\": %.1f,\n"
               "  \"mean_ns_per_hour_off\": %.1f,\n"
               "  \"mean_ns_per_hour_on\": %.1f,\n"
               "  \"overhead_pct\": %.3f,\n"
               "  \"within_budget\": %s,\n"
               "  \"cache_hit_ratio\": %.4f\n"
               "}\n",
               kRounds * kHoursPerBlock, best_off, best_on,
               sum_off / kRounds, sum_on / kRounds, overhead_pct,
               overhead_pct < 2.0 ? "true" : "false", hit_ratio);
  std::fclose(f);
  std::printf("obs overhead: %.3f%% (off %.0f ns/hour, on %.0f ns/hour), "
              "cache hit ratio %.4f\n",
              overhead_pct, best_off, best_on, hit_ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flag before google-benchmark sees it (it rejects unknowns).
  bool obs_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--obs-overhead") {
      obs_overhead = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (obs_overhead) return run_obs_overhead_bench();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_campaign_json("BENCH_campaign.json");
  return 0;
}

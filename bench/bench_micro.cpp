// Microbenchmarks of the substrate's hot paths (google-benchmark).
//
// These are the operations that bound a full campaign's wall-clock:
// internet generation, route construction, per-hour path evaluation,
// a complete speed test, traceroute, and time-series writes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "clasp/platform.hpp"
#include "probes/traceroute.hpp"

namespace {

using namespace clasp;

clasp_platform& shared_platform() {
  static clasp_platform* platform = [] {
    platform_config cfg;
    return new clasp_platform(cfg);
  }();
  return *platform;
}

void BM_GenerateInternet(benchmark::State& state) {
  internet_config cfg;
  cfg.regional_isp_count = static_cast<std::size_t>(state.range(0));
  cfg.business_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    internet net = generate_internet(cfg);
    benchmark::DoNotOptimize(net.topo->link_count());
  }
  state.SetLabel(std::to_string(generate_internet(cfg).topo->as_count()) +
                 " ASes");
}
BENCHMARK(BM_GenerateInternet)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RouteConstruction(benchmark::State& state) {
  auto& p = shared_platform();
  route_planner& planner = p.planner();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const auto& vps = p.net().vantage_points;
  std::size_t i = 0;
  for (auto _ : state) {
    const endpoint src = planner.endpoint_of_host(vps[i++ % vps.size()]);
    benchmark::DoNotOptimize(
        planner.to_cloud(src, vm, service_tier::premium).routers.size());
  }
}
BENCHMARK(BM_RouteConstruction);

void BM_PathEvaluation(benchmark::State& state) {
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint src =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.view().evaluate(path, hour_stamp{h++ % 3672}).rtt.value);
  }
}
BENCHMARK(BM_PathEvaluation);

void BM_SpeedTest(benchmark::State& state) {
  auto& p = shared_platform();
  static gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-east1", service_tier::premium);
  const auto us = p.registry().crawl("US");
  speed_test_session session(&p.cloud(), &p.view(), vm,
                             p.registry().server(us.front()));
  rng r(1);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.run(hour_stamp{h++ % 3672}, r).download.value);
  }
}
BENCHMARK(BM_SpeedTest);

void BM_Traceroute(benchmark::State& state) {
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-west1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint dst =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path =
      p.planner().from_cloud(vm, dst, service_tier::premium);
  network_view view(&p.net());
  prober probe(&p.planner(), &view);
  rng r(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe.traceroute(path, hour_stamp{12}, r).hops.size());
  }
}
BENCHMARK(BM_Traceroute);

void BM_TsdbWrite(benchmark::State& state) {
  tsdb db;
  const tag_set tags = {{"campaign", "bench"}, {"server", "1"}};
  std::int64_t h = 0;
  for (auto _ : state) {
    db.write("download_mbps", tags, hour_stamp{h++}, 123.4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbWrite);

void BM_TsdbWriteInterned(benchmark::State& state) {
  // The campaign fast path: tag set resolved once, appends go through an
  // integer ref (compare against BM_TsdbWrite's per-point string keying).
  tsdb db;
  const series_ref ref =
      db.open_series("download_mbps", {{"campaign", "bench"}, {"server", "1"}});
  std::int64_t h = 0;
  for (auto _ : state) {
    db.write(ref, hour_stamp{h++}, 123.4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbWriteInterned);

void BM_TsdbQuery(benchmark::State& state) {
  tsdb db;
  for (int s = 0; s < 200; ++s) {
    const tag_set tags = {{"campaign", "bench"},
                          {"server", std::to_string(s)},
                          {"region", s % 2 ? "us-west1" : "us-east1"}};
    for (int h = 0; h < 100; ++h) db.write("m", tags, hour_stamp{h}, h);
  }
  tag_filter filter;
  filter.required["region"] = "us-west1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.query("m", filter).size());
  }
}
BENCHMARK(BM_TsdbQuery);

void BM_CampaignHour(benchmark::State& state) {
  // One simulated campaign hour (the unit every figure bench replays
  // thousands of times), at 1 / 2 / hardware_concurrency workers. Each
  // worker count deploys its own fleet against the shared substrate; the
  // hour counter never rewinds so TSDB appends stay time-ordered.
  auto& p = shared_platform();
  static const std::vector<std::size_t> servers = [&] {
    auto us = p.registry().crawl("US");
    us.resize(std::min<std::size_t>(us.size(), 64));
    return us;
  }();
  static int deploy_counter = 0;

  campaign_config cfg;
  cfg.region = "us-east1";
  cfg.label = "bench-hour-" + std::to_string(deploy_counter++);
  cfg.tests_per_vm_hour = 8;  // 8 VMs over 64 servers
  cfg.workers = static_cast<unsigned>(state.range(0));
  campaign_runner runner(&p.cloud(), &p.view(), &p.registry(), &p.store());
  runner.deploy(cfg, servers);

  static std::int64_t h = 0;
  for (auto _ : state) {
    runner.run_hour(hour_stamp{h++});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(servers.size()));
  state.SetLabel(std::to_string(runner.vm_count()) + " VMs, " +
                 std::to_string(runner.workers()) + " workers");
}
BENCHMARK(BM_CampaignHour)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DailyVariability(benchmark::State& state) {
  ts_series s("m", {});
  for (int i = 0; i < 24 * 153; ++i) {
    s.append(hour_stamp{i}, 400.0 + (i % 24) * 5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(daily_variability(s, timezone_offset{-5}).size());
  }
}
BENCHMARK(BM_DailyVariability);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks of the substrate's hot paths (google-benchmark).
//
// These are the operations that bound a full campaign's wall-clock:
// internet generation, route construction, per-hour path evaluation,
// a complete speed test, traceroute, and time-series writes.
//
// BM_CampaignHour additionally writes BENCH_campaign.json next to the
// binary: per-(workers, cached) ns/hour plus the cached-vs-uncached
// speedup ratio, for machine consumption by CI trend tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "clasp/platform.hpp"
#include "netsim/network.hpp"
#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "probes/traceroute.hpp"
#include "speedtest/webtest.hpp"

namespace {

using namespace clasp;

// (workers, cached, fleet_scale, batch) -> accumulated run_hour time,
// for BENCH_campaign.json.
struct campaign_bench_total {
  double ns{0.0};
  std::int64_t hours{0};
};
using campaign_bench_key = std::tuple<int, int, int, int>;
std::map<campaign_bench_key, campaign_bench_total>& campaign_totals() {
  static auto* totals =
      new std::map<campaign_bench_key, campaign_bench_total>();
  return *totals;
}

clasp_platform& shared_platform() {
  static clasp_platform* platform = [] {
    platform_config cfg;
    return new clasp_platform(cfg);
  }();
  return *platform;
}

// A second platform with a 10x-replicated fleet: same world (replicas
// share their base servers' host attachments), ten times the measurement
// load per campaign hour.
clasp_platform& scaled_platform() {
  static clasp_platform* platform = [] {
    platform_config cfg;
    cfg.fleet_scale = 10;
    return new clasp_platform(cfg);
  }();
  return *platform;
}

void BM_GenerateInternet(benchmark::State& state) {
  internet_config cfg;
  cfg.regional_isp_count = static_cast<std::size_t>(state.range(0));
  cfg.business_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    internet net = generate_internet(cfg);
    benchmark::DoNotOptimize(net.topo->link_count());
  }
  state.SetLabel(std::to_string(generate_internet(cfg).topo->as_count()) +
                 " ASes");
}
BENCHMARK(BM_GenerateInternet)->Arg(250)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_RouteConstruction(benchmark::State& state) {
  auto& p = shared_platform();
  route_planner& planner = p.planner();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const auto& vps = p.net().vantage_points;
  std::size_t i = 0;
  for (auto _ : state) {
    const endpoint src = planner.endpoint_of_host(vps[i++ % vps.size()]);
    benchmark::DoNotOptimize(
        planner.to_cloud(src, vm, service_tier::premium).routers.size());
  }
}
BENCHMARK(BM_RouteConstruction);

void BM_PathEvaluation(benchmark::State& state) {
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint src =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.view().evaluate(path, hour_stamp{h++ % 3672}).rtt.value);
  }
}
BENCHMARK(BM_PathEvaluation);

void BM_EvaluatePathFlat(benchmark::State& state) {
  // The session fast path: the route flattened once, evaluations walking
  // the contiguous hop array (no cache; compare against BM_PathEvaluation
  // for the flattening win alone).
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint src =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  network_view view(&p.net());
  const flat_path flat = view.flatten(path);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        view.evaluate(flat, hour_stamp{h++ % 3672}).rtt.value);
  }
}
BENCHMARK(BM_EvaluatePathFlat);

void BM_EvaluatePathCached(benchmark::State& state) {
  // The campaign hot loop's steady state: flat path + a prefilled
  // hour-epoch condition cache, so every hop is two table lookups.
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-east1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint src =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path = p.planner().to_cloud(src, vm, service_tier::premium);
  network_view view(&p.net());
  const flat_path flat = view.flatten(path);
  view.link_cache().register_path(path);
  const hour_stamp at{20};  // one prefilled epoch, as within a replay hour
  view.link_cache().prefill(at);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.evaluate(flat, at).rtt.value);
  }
}
BENCHMARK(BM_EvaluatePathCached);

void BM_SpeedTest(benchmark::State& state) {
  auto& p = shared_platform();
  static gcp_cloud::vm_id vm =
      p.cloud().create_vm("us-east1", service_tier::premium);
  const auto us = p.registry().crawl("US");
  speed_test_session session(&p.cloud(), &p.view(), vm,
                             p.registry().server(us.front()));
  rng r(1);
  std::int64_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.run(hour_stamp{h++ % 3672}, r).download.value);
  }
}
BENCHMARK(BM_SpeedTest);

void BM_Traceroute(benchmark::State& state) {
  auto& p = shared_platform();
  const city_id region = p.cloud().region_city("us-west1");
  const auto router = p.net().topo->router_of(p.net().cloud, region);
  const endpoint vm{p.net().cloud, region,
                    p.net().topo->router_at(*router).loopback, std::nullopt};
  const endpoint dst =
      p.planner().endpoint_of_host(p.net().vantage_points.front());
  const route_path path =
      p.planner().from_cloud(vm, dst, service_tier::premium);
  network_view view(&p.net());
  prober probe(&p.planner(), &view);
  rng r(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe.traceroute(path, hour_stamp{12}, r).hops.size());
  }
}
BENCHMARK(BM_Traceroute);

void BM_TsdbWrite(benchmark::State& state) {
  tsdb db;
  const tag_set tags = {{"campaign", "bench"}, {"server", "1"}};
  std::int64_t h = 0;
  for (auto _ : state) {
    db.write("download_mbps", tags, hour_stamp{h++}, 123.4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbWrite);

void BM_TsdbWriteInterned(benchmark::State& state) {
  // The campaign fast path: tag set resolved once, appends go through an
  // integer ref (compare against BM_TsdbWrite's per-point string keying).
  tsdb db;
  const series_ref ref =
      db.open_series("download_mbps", {{"campaign", "bench"}, {"server", "1"}});
  std::int64_t h = 0;
  for (auto _ : state) {
    db.write(ref, hour_stamp{h++}, 123.4);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TsdbWriteInterned);

void BM_TsdbQuery(benchmark::State& state) {
  tsdb db;
  for (int s = 0; s < 200; ++s) {
    const tag_set tags = {{"campaign", "bench"},
                          {"server", std::to_string(s)},
                          {"region", s % 2 ? "us-west1" : "us-east1"}};
    for (int h = 0; h < 100; ++h) db.write("m", tags, hour_stamp{h}, h);
  }
  tag_filter filter;
  filter.required["region"] = "us-west1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.query("m", filter).size());
  }
}
BENCHMARK(BM_TsdbQuery);

void BM_CampaignHour(benchmark::State& state) {
  // One simulated campaign hour (the unit every figure bench replays
  // thousands of times), across worker counts, the link-condition cache
  // on/off, fleet scale 1x/10x and the batched arena evaluator on/off
  // (off = the pre-refactor per-session path, kept as the legacy
  // baseline). Each configuration deploys its own fleet against its
  // platform's substrate; the hour counter never rewinds so TSDB appends
  // stay time-ordered (which also guarantees an uncached configuration
  // never hits a stale prefilled epoch — the hour always moved on).
  const int workers = static_cast<int>(state.range(0));
  const bool cached = state.range(1) != 0;
  const int scale = static_cast<int>(state.range(2));
  const bool batch = state.range(3) != 0;
  auto& p = scale > 1 ? scaled_platform() : shared_platform();
  // 64 base US servers; the scaled platform fans each out to its
  // replicas (640 sessions at 10x).
  const std::vector<std::size_t> servers = [&] {
    auto us = p.registry().crawl("US");
    us.resize(std::min<std::size_t>(us.size(), 64));
    return p.registry().with_replicas(us);
  }();

  // One fleet per configuration, shared across the library's calibration
  // reruns: repeated deploys would keep growing the platform (VMs,
  // interned series), silently slowing whichever configs run later.
  static auto* runners =
      new std::map<campaign_bench_key, std::unique_ptr<campaign_runner>>();
  static std::int64_t h = 0;
  const campaign_bench_key key{workers, cached ? 1 : 0, scale, batch ? 1 : 0};
  std::unique_ptr<campaign_runner>& slot = (*runners)[key];
  if (!slot) {
    campaign_config cfg;
    cfg.region = "us-east1";
    cfg.label = "bench-hour-" + std::to_string(workers) +
                (cached ? "-cached" : "-uncached") + "-x" +
                std::to_string(scale) + (batch ? "-batch" : "-legacy");
    cfg.tests_per_vm_hour = 17;  // the paper's VM budget: 4 VMs, 64 servers
    cfg.workers = static_cast<unsigned>(workers);
    cfg.link_cache = cached;
    cfg.batch_eval = batch;
    slot = std::make_unique<campaign_runner>(&p.cloud(), &p.view(),
                                             &p.registry(), &p.store());
    slot->deploy(cfg, servers);
    // Untimed warm-up: a real replay runs thousands of hours, so the
    // metric is the steady-state hour — after the staging buffers and the
    // TSDB point vectors have reached their working capacity, not the
    // handful of allocation-heavy hours right after deploy.
    for (int i = 0; i < 64; ++i) slot->run_hour(hour_stamp{h++});
  }
  campaign_runner& runner = *slot;

  double ns = 0.0;
  std::int64_t hours = 0;
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    runner.run_hour(hour_stamp{h++});
    const auto end = std::chrono::steady_clock::now();
    ns += std::chrono::duration<double, std::nano>(end - begin).count();
    ++hours;
  }
  campaign_bench_total& total = campaign_totals()[key];
  total.ns += ns;
  total.hours += hours;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(servers.size()));
  state.SetLabel(std::to_string(runner.vm_count()) + " VMs, " +
                 std::to_string(runner.workers()) + " workers, cache " +
                 (cached ? "on" : "off") + ", x" + std::to_string(scale) +
                 (batch ? ", batch" : ", legacy"));
}
BENCHMARK(BM_CampaignHour)->Apply([](benchmark::internal::Benchmark* b) {
  // {workers, cached, fleet_scale, batch}
  b->Args({1, 0, 1, 1});
  b->Args({1, 1, 1, 1});
  b->Args({2, 0, 1, 1});
  b->Args({2, 1, 1, 1});
  b->Args({4, 1, 1, 1});
  // The legacy per-session path at 1x (regression sentinel for the
  // batch=off fallback)...
  b->Args({1, 1, 1, 0});
  // ...and the 10x fleet, legacy-uncached vs batched-cached: the pair
  // behind BENCH_campaign.json's speedup_at_10x.
  b->Args({1, 0, 10, 0});
  b->Args({1, 1, 10, 1});
  // Full hardware concurrency, unless that duplicates a config above
  // (e.g. the 1-CPU bench container, where it would re-run {1, 1, 1, 1}
  // against a by-then much larger store and skew the per-config
  // averages).
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) b->Args({hw, 1, 1, 1});
  b->Unit(benchmark::kMillisecond)->UseRealTime();
});

// (fleet_scale, batch) -> accumulated path-metrics production time, for
// BENCH_campaign.json's speedup_at_10x.
using link_bench_key = std::pair<int, int>;
std::map<link_bench_key, campaign_bench_total>& link_eval_totals() {
  static auto* totals = new std::map<link_bench_key, campaign_bench_total>();
  return *totals;
}

void BM_LinkHourEval(benchmark::State& state) {
  // The tentpole fast path in isolation: producing every session path's
  // metrics for one hour at fleet scale. legacy = per-session
  // evaluate(flat_path) with per-hop condition computation — exactly
  // what session.run() did before the refactor; batch = one hour-epoch
  // prefill of the shared condition cache plus one blocked sweep over
  // the path arena. The two produce bit-identical metrics (asserted by
  // netsim's NetworkBatch tests); this measures only the time. At 10x
  // fleet the replicas share their base servers' links, so the legacy
  // path recomputes every shared link condition per crossing session
  // while the batch path computes each distinct (link, dir) once.
  const int scale = static_cast<int>(state.range(0));
  const bool batch = state.range(1) != 0;
  auto& p = scale > 1 ? scaled_platform() : shared_platform();

  struct fixture {
    network_view view;
    std::vector<speed_test_session> sessions;
    path_arena arena;
    std::vector<path_metrics> out;
    fixture(clasp_platform& plat, bool batched) : view(&plat.net()) {
      auto us = plat.registry().crawl("US");
      us.resize(std::min<std::size_t>(us.size(), 64));
      const auto servers = plat.registry().with_replicas(us);
      const auto vm =
          plat.cloud().create_vm("us-east1", service_tier::premium);
      sessions.reserve(servers.size());
      for (const std::size_t id : servers) {
        sessions.emplace_back(&plat.cloud(), &view, vm,
                              plat.registry().server(id));
      }
      if (batched) {
        for (const auto& s : sessions) {
          view.link_cache().register_path(s.download_path());
          view.link_cache().register_path(s.upload_path());
          arena.add(s.flat_download_path());
          arena.add(s.flat_upload_path());
        }
        arena.resolve(view.link_cache());
        out.resize(arena.size());
      }
    }
  };
  // One fixture per config, reused across the library's calibration
  // reruns. Each owns its view — and therefore its condition cache — so
  // registrations here never perturb BM_CampaignHour's prefill set.
  static auto* fixtures =
      new std::map<link_bench_key, std::unique_ptr<fixture>>();
  static std::int64_t h = 0;
  const link_bench_key key{scale, batch ? 1 : 0};
  std::unique_ptr<fixture>& slot = (*fixtures)[key];
  if (!slot) slot = std::make_unique<fixture>(p, batch);
  fixture& fx = *slot;

  double ns = 0.0;
  std::int64_t hours = 0;
  for (auto _ : state) {
    const hour_stamp at{h++};
    const auto begin = std::chrono::steady_clock::now();
    if (batch) {
      fx.view.link_cache().prefill(at);
      fx.view.evaluate_batch(fx.arena, at, 0, fx.arena.size(),
                             fx.out.data());
      benchmark::DoNotOptimize(fx.out.front().rtt.value);
    } else {
      double sink = 0.0;
      for (const speed_test_session& s : fx.sessions) {
        sink += fx.view.evaluate(s.flat_download_path(), at).rtt.value;
        sink += fx.view.evaluate(s.flat_upload_path(), at).rtt.value;
      }
      benchmark::DoNotOptimize(sink);
    }
    const auto end = std::chrono::steady_clock::now();
    ns += std::chrono::duration<double, std::nano>(end - begin).count();
    ++hours;
  }
  campaign_bench_total& total = link_eval_totals()[key];
  total.ns += ns;
  total.hours += hours;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.sessions.size()));
  state.SetLabel(std::to_string(fx.sessions.size()) + " sessions, x" +
                 std::to_string(scale) + (batch ? ", batch" : ", legacy"));
}
BENCHMARK(BM_LinkHourEval)->Apply([](benchmark::internal::Benchmark* b) {
  // {fleet_scale, batch}
  b->Args({1, 0});
  b->Args({1, 1});
  b->Args({10, 0});
  b->Args({10, 1});
  b->Unit(benchmark::kMicrosecond)->UseRealTime();
});

void BM_DailyVariability(benchmark::State& state) {
  ts_series s("m", {});
  for (int i = 0; i < 24 * 153; ++i) {
    s.append(hour_stamp{i}, 400.0 + (i % 24) * 5.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(daily_variability(s, timezone_offset{-5}).size());
  }
}
BENCHMARK(BM_DailyVariability);

// BENCH_campaign.json: [{workers, cached, fleet_scale, batch,
// ns_per_hour}, ...] plus one cached_vs_uncached_ratio entry per worker
// count measured both ways at 1x (uncached ns / cached ns; > 1 means the
// cache wins), the 1x batched-cached ns/hour (ns_per_hour_1x, the soft
// perf gate's input), and two 10x-fleet speedups:
//  * speedup_at_10x — BM_LinkHourEval's batched arena sweep vs the
//    pre-refactor per-session evaluate path, for the hour's path-metrics
//    production (the work this refactor targets);
//  * hour_speedup_at_10x — the whole campaign hour (staging, noise
//    model, commit and all), batched-cached vs legacy-uncached. Smaller
//    by Amdahl: per-session measurement-noise synthesis dominates the
//    hour and is byte-identity-frozen, so no evaluator can touch it.
void write_campaign_json(const char* path) {
  const auto& totals = campaign_totals();
  if (totals.empty()) return;  // BM_CampaignHour filtered out of the run
  const auto ns_per_hour = [&](const campaign_bench_key& key) {
    const auto it = totals.find(key);
    if (it == totals.end() || it->second.hours == 0) return 0.0;
    return it->second.ns / static_cast<double>(it->second.hours);
  };
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"BM_CampaignHour\",\n  \"runs\": [\n");
  bool first = true;
  for (const auto& [key, total] : totals) {
    if (total.hours == 0) continue;
    const auto [workers, cached, scale, batch] = key;
    std::fprintf(f,
                 "%s    {\"workers\": %d, \"cached\": %s, "
                 "\"fleet_scale\": %d, \"batch\": %s, "
                 "\"ns_per_hour\": %.1f, \"hours\": %lld}",
                 first ? "" : ",\n", workers, cached ? "true" : "false",
                 scale, batch ? "true" : "false",
                 total.ns / static_cast<double>(total.hours),
                 static_cast<long long>(total.hours));
    first = false;
  }
  std::fprintf(f, "\n  ],\n  \"cached_vs_uncached_ratio\": {");
  first = true;
  for (const auto& [key, total] : totals) {
    const auto [workers, cached, scale, batch] = key;
    if (cached != 0 || scale != 1 || batch != 1 || total.hours == 0) continue;
    const double uncached = total.ns / static_cast<double>(total.hours);
    const double cached_ns = ns_per_hour({workers, 1, 1, 1});
    if (cached_ns <= 0.0) continue;
    std::fprintf(f, "%s\"%d\": %.3f", first ? "" : ", ", workers,
                 uncached / cached_ns);
    first = false;
  }
  std::fprintf(f, "}");
  // BM_LinkHourEval's per-config ns/hour (path-metrics production only).
  const auto& link_totals = link_eval_totals();
  const auto link_ns_per_hour = [&](const link_bench_key& key) {
    const auto it = link_totals.find(key);
    if (it == link_totals.end() || it->second.hours == 0) return 0.0;
    return it->second.ns / static_cast<double>(it->second.hours);
  };
  if (!link_totals.empty()) {
    std::fprintf(f, ",\n  \"link_eval_runs\": [\n");
    first = true;
    for (const auto& [key, total] : link_totals) {
      if (total.hours == 0) continue;
      std::fprintf(f,
                   "%s    {\"fleet_scale\": %d, \"batch\": %s, "
                   "\"ns_per_hour\": %.1f, \"hours\": %lld}",
                   first ? "" : ",\n", key.first,
                   key.second != 0 ? "true" : "false",
                   total.ns / static_cast<double>(total.hours),
                   static_cast<long long>(total.hours));
      first = false;
    }
    std::fprintf(f, "\n  ]");
  }
  // The soft perf gate's input: serial batched-cached ns/hour at 1x.
  const double one_x = ns_per_hour({1, 1, 1, 1});
  if (one_x > 0.0) {
    std::fprintf(f, ",\n  \"ns_per_hour_1x\": %.1f", one_x);
  }
  // 10x fleet, whole campaign hour: batched-cached vs legacy-uncached
  // (> 1 means the SoA refactor wins end to end).
  const double legacy_10x = ns_per_hour({1, 0, 10, 0});
  const double batched_10x = ns_per_hour({1, 1, 10, 1});
  if (legacy_10x > 0.0 && batched_10x > 0.0) {
    std::fprintf(f, ",\n  \"hour_speedup_at_10x\": %.3f",
                 legacy_10x / batched_10x);
  }
  // 10x fleet, the hour's path-metrics production: batched arena sweep
  // (prefill + blocked evaluate) vs the pre-refactor per-session
  // evaluate calls. This is the operation the refactor replaces.
  const double link_legacy_10x = link_ns_per_hour({10, 0});
  const double link_batched_10x = link_ns_per_hour({10, 1});
  if (link_legacy_10x > 0.0 && link_batched_10x > 0.0) {
    std::fprintf(f, ",\n  \"speedup_at_10x\": %.3f",
                 link_legacy_10x / link_batched_10x);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
}

// --obs-overhead: A/B harness for the observability subsystem's cost.
// The same deployed fleet replays interleaved blocks of hours with
// metrics off and on (counters, spans, hour histogram — everything the
// campaign records); per-mode cost is the best round, which shrugs off
// scheduler noise the way the worst-case mean cannot. Emits
// BENCH_obs.json with the overhead percentage, a within_budget verdict
// against the 2% target, and the condition-cache hit ratio observed by
// the counters themselves.
int run_obs_overhead_bench() {
  auto& p = shared_platform();
  auto servers = p.registry().crawl("US");
  servers.resize(std::min<std::size_t>(servers.size(), 64));

  campaign_config cfg;
  cfg.region = "us-east1";
  cfg.label = "bench-obs";
  cfg.tests_per_vm_hour = 17;
  cfg.workers = 1;  // serial replay: the least noisy hour to time
  cfg.link_cache = true;
  campaign_runner runner(&p.cloud(), &p.view(), &p.registry(), &p.store());
  runner.deploy(cfg, servers);

  obs::set_enabled(false);
  obs::register_core_families();
  obs::metrics_registry::instance().reset_values();

  std::int64_t h = 0;
  // Untimed warm-up, as in BM_CampaignHour: the metric is the
  // steady-state hour, not the allocation-heavy ramp after deploy.
  for (int i = 0; i < 64; ++i) runner.run_hour(hour_stamp{h++});

  constexpr int kRounds = 12;
  constexpr int kHoursPerBlock = 32;
  const auto time_block = [&] {
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kHoursPerBlock; ++i) runner.run_hour(hour_stamp{h++});
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::nano>(end - begin).count() /
           kHoursPerBlock;
  };

  // Paired rounds: each round times an off block and an on block back to
  // back, so drift (TSDB vector reallocation spikes, frequency scaling)
  // hits both sides alike; the median across rounds is the verdict, which
  // single outlier blocks cannot move.
  std::vector<double> per_round_pct;
  double best_off = 0.0, best_on = 0.0, sum_off = 0.0, sum_on = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(false);
    const double off = time_block();
    obs::set_enabled(true);
    const double on = time_block();
    per_round_pct.push_back((on - off) / off * 100.0);
    if (round == 0 || off < best_off) best_off = off;
    if (round == 0 || on < best_on) best_on = on;
    sum_off += off;
    sum_on += on;
  }
  obs::set_enabled(false);
  std::sort(per_round_pct.begin(), per_round_pct.end());
  const double median_pct =
      (per_round_pct[kRounds / 2 - 1] + per_round_pct[kRounds / 2]) / 2.0;

  const auto counters = obs::metrics_registry::instance().counters();
  const double hits =
      static_cast<double>(counters.at(obs::family::kCacheHits));
  const double misses =
      static_cast<double>(counters.at(obs::family::kCacheMisses));
  const double hit_ratio =
      hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
  const double overhead_pct = median_pct;

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"benchmark\": \"obs_overhead\",\n"
               "  \"hours_per_mode\": %d,\n"
               "  \"ns_per_hour_off\": %.1f,\n"
               "  \"ns_per_hour_on\": %.1f,\n"
               "  \"mean_ns_per_hour_off\": %.1f,\n"
               "  \"mean_ns_per_hour_on\": %.1f,\n"
               "  \"overhead_pct\": %.3f,\n"
               "  \"within_budget\": %s,\n"
               "  \"cache_hit_ratio\": %.4f\n"
               "}\n",
               kRounds * kHoursPerBlock, best_off, best_on,
               sum_off / kRounds, sum_on / kRounds, overhead_pct,
               overhead_pct < 2.0 ? "true" : "false", hit_ratio);
  std::fclose(f);
  std::printf("obs overhead: %.3f%% (off %.0f ns/hour, on %.0f ns/hour), "
              "cache hit ratio %.4f\n",
              overhead_pct, best_off, best_on, hit_ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flag before google-benchmark sees it (it rejects unknowns).
  bool obs_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--obs-overhead") {
      obs_overhead = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (obs_overhead) return run_obs_overhead_bench();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_campaign_json("BENCH_campaign.json");
  return 0;
}

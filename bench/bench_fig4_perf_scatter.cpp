// Fig. 4: best network performance per server-month — 95th percentile
// download throughput vs 5th percentile latency, with kernel-density
// margins.
//
// Paper: (a) topology-based servers — >90% of points have latency <150 ms
// and download >200 Mbps; 80% of servers between 200-600 Mbps; nothing
// saturates the 1 Gbps shaped NIC. (b/c) differential servers, premium
// vs standard tier — premium shows smaller throughput variance; some
// standard-tier servers are faster.
#include "bench_support.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;

struct scatter_stats {
  std::vector<double> downloads;  // p95 per server-month
  std::vector<double> latencies;  // p5 per server-month
};

scatter_stats collect(const clasp_platform& platform,
                      const std::string& campaign, const std::string& region,
                      const std::string& tier, bool print_points) {
  scatter_stats stats;
  const auto data =
      platform.download_series(campaign, region, "download_mbps", tier);
  for (const ts_series* s : data.series) {
    tag_set tags = s->tags();
    const ts_series* lat = platform.store().find("latency_ms", tags);
    if (lat == nullptr) continue;
    for (const monthly_performance& m : monthly_best_performance(*s, *lat)) {
      stats.downloads.push_back(m.p95_download_mbps);
      stats.latencies.push_back(m.p5_latency_ms);
      if (print_points) {
        std::printf("%s %s 2020-%02u %.1f %.1f\n", region.c_str(),
                    s->tag("server").value_or("?").c_str(), m.month,
                    m.p95_download_mbps, m.p5_latency_ms);
      }
    }
  }
  return stats;
}

void print_summary(const char* label, const scatter_stats& stats) {
  if (stats.downloads.empty()) {
    std::printf("%s: no data\n", label);
    return;
  }
  std::size_t in_band = 0, low_lat = 0, saturated = 0;
  for (std::size_t i = 0; i < stats.downloads.size(); ++i) {
    if (stats.downloads[i] >= 200.0 && stats.downloads[i] <= 600.0) ++in_band;
    if (stats.latencies[i] < 150.0) ++low_lat;
    if (stats.downloads[i] >= 980.0) ++saturated;
  }
  const double n = static_cast<double>(stats.downloads.size());
  std::printf(
      "%s: n=%zu  median_p95=%.0f Mbps  in[200,600]=%.0f%%  lat<150ms=%.0f%%"
      "  saturating=%zu  download_stddev=%.0f\n",
      label, stats.downloads.size(), median(stats.downloads),
      100.0 * in_band / n, 100.0 * low_lat / n, saturated,
      sample_stddev(stats.downloads));
}

void print_kde(const char* label, const std::vector<double>& xs, double lo,
               double hi) {
  if (xs.empty()) return;
  std::printf("# kde %s\n", label);
  for (const kde_point& p : gaussian_kde(xs, lo, hi, 25)) {
    std::printf("%.1f %.5f\n", p.x, p.density);
  }
}

}  // namespace

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();
  run_topology_campaigns(platform, table1_regions());
  for (const std::string& region : differential_regions()) {
    run_differential_campaign(platform, region);
  }

  print_header("Fig. 4 — 95th-pct download vs 5th-pct latency per "
               "server-month",
               "topology servers: 80%% in 200-600 Mbps, latency <150 ms, "
               "no saturation; premium tier lower variance than standard");

  std::printf("\n# Fig 4a points (region server month p95_down p5_lat)\n");
  scatter_stats topo_all;
  for (const std::string& region : table1_regions()) {
    const scatter_stats s = collect(platform, "topology", region, "", true);
    topo_all.downloads.insert(topo_all.downloads.end(), s.downloads.begin(),
                              s.downloads.end());
    topo_all.latencies.insert(topo_all.latencies.end(), s.latencies.begin(),
                              s.latencies.end());
  }

  std::printf("\n# Fig 4b points (premium tier)\n");
  scatter_stats prem_all, std_all;
  for (const std::string& region : differential_regions()) {
    const scatter_stats s =
        collect(platform, "diff-premium", region, "premium", true);
    prem_all.downloads.insert(prem_all.downloads.end(), s.downloads.begin(),
                              s.downloads.end());
    prem_all.latencies.insert(prem_all.latencies.end(), s.latencies.begin(),
                              s.latencies.end());
  }
  std::printf("\n# Fig 4c points (standard tier)\n");
  for (const std::string& region : differential_regions()) {
    const scatter_stats s =
        collect(platform, "diff-standard", region, "standard", true);
    std_all.downloads.insert(std_all.downloads.end(), s.downloads.begin(),
                             s.downloads.end());
    std_all.latencies.insert(std_all.latencies.end(), s.latencies.begin(),
                             s.latencies.end());
  }

  std::printf("\nsummaries:\n");
  print_summary("fig4a topology", topo_all);
  print_summary("fig4b premium ", prem_all);
  print_summary("fig4c standard", std_all);

  std::printf("\nkernel densities (download margin):\n");
  print_kde("topology", topo_all.downloads, 0.0, 1000.0);
  print_kde("premium", prem_all.downloads, 0.0, 600.0);
  print_kde("standard", std_all.downloads, 0.0, 600.0);
  return 0;
}

// Fig. 7 / Appendix A: locations of cloud regions and the servers each
// region's selection picked (topology-based: blue circles, all in the
// U.S.; differential-based: magenta squares, global).
#include "bench_support.hpp"

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();

  print_header("Fig. 7 — Locations of cloud regions and selected servers",
               "topology servers all in the U.S.; differential servers "
               "global");

  const geo_database& geo = *platform.net().geo;

  for (const std::string& region : table1_regions()) {
    const auto& sel = platform.select_topology(region);
    const city_info& rc =
        geo.city_by_name(region_by_name(region).city_name);
    std::printf("\n# map %s (region at %.2f,%.2f)\n", region.c_str(),
                rc.latitude, rc.longitude);
    std::printf("# columns: kind lat lon label\n");
    std::printf("region %.2f %.2f %s\n", rc.latitude, rc.longitude,
                rc.name.c_str());
    std::size_t non_us = 0;
    for (const selected_server& s : sel.selected) {
      const speed_server& server = platform.registry().server(s.server_id);
      const city_info& c = geo.city(server.city);
      std::printf("topology %.2f %.2f %s\n", c.latitude, c.longitude,
                  server.name.c_str());
      if (c.country != "US") ++non_us;
    }
    std::printf("# %zu servers, %zu outside the U.S. (paper: all U.S.)\n",
                sel.selected.size(), non_us);
  }

  for (const std::string& region : differential_regions()) {
    const auto& sel = platform.select_differential(region);
    const city_info& rc =
        geo.city_by_name(region_by_name(region).city_name);
    std::printf("\n# map %s differential (region at %.2f,%.2f)\n",
                region.c_str(), rc.latitude, rc.longitude);
    std::size_t countries = 0;
    std::vector<std::string> seen;
    for (const auto& chosen : sel.selected) {
      const speed_server& server = platform.registry().server(chosen.server_id);
      const city_info& c = geo.city(server.city);
      std::printf("differential %.2f %.2f %s [%s]\n", c.latitude, c.longitude,
                  server.name.c_str(), to_string(chosen.cls));
      if (std::find(seen.begin(), seen.end(), c.country) == seen.end()) {
        seen.push_back(c.country);
        ++countries;
      }
    }
    std::printf("# %zu servers across %zu countries (paper: global spread)\n",
                sel.selected.size(), countries);
  }
  return 0;
}

// Fig. 5: CDFs of the relative premium-vs-standard difference for
// download throughput (5a), upload throughput (5b) and latency (5c) in
// europe-west1, grouped by the pre-test latency class.
//
// Paper: standard tier generally faster for download (>=87% of reports in
// 8 servers); relative difference <50% in >92% of measurements; upload
// similar when premium latency comparable or lower; measured latency
// consistent with the pre-test classes; premium loss >10% on 8 targets.
#include "bench_support.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;

// Collect relative differences per metric for servers in a latency class.
std::vector<double> deltas_for(
    const clasp_platform& platform, const std::string& metric,
    const std::vector<std::size_t>& servers) {
  std::vector<double> out;
  for (const std::size_t sid : servers) {
    tag_set prem_tags = {{"campaign", "diff-premium"},
                         {"region", "europe-west1"},
                         {"tier", "premium"},
                         {"server", std::to_string(sid)}};
    const speed_server& server = platform.registry().server(sid);
    prem_tags["network"] = std::to_string(server.network.value);
    prem_tags["city"] = platform.net().geo->city(server.city).name;
    tag_set std_tags = prem_tags;
    std_tags["campaign"] = "diff-standard";
    std_tags["tier"] = "standard";
    const ts_series* prem = platform.store().find(metric, prem_tags);
    const ts_series* stnd = platform.store().find(metric, std_tags);
    if (prem == nullptr || stnd == nullptr) continue;
    const auto deltas = relative_differences(*prem, *stnd);
    out.insert(out.end(), deltas.begin(), deltas.end());
  }
  return out;
}

void print_cdf(const char* figure, const char* cls,
               const std::vector<double>& deltas) {
  if (deltas.empty()) return;
  std::printf("# cdf %s class=%s n=%zu\n", figure, cls, deltas.size());
  const auto cdf = empirical_cdf(deltas);
  // Thin to ~40 points for readability.
  const std::size_t step = std::max<std::size_t>(cdf.size() / 40, 1);
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    std::printf("%.4f %.4f\n", cdf[i].x, cdf[i].cumulative_fraction);
  }
  if ((cdf.size() - 1) % step != 0) {
    std::printf("%.4f %.4f\n", cdf.back().x, cdf.back().cumulative_fraction);
  }
}

}  // namespace

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();
  run_differential_campaign(platform, "europe-west1");

  print_header("Fig. 5 — Premium vs standard tier (europe-west1)",
               "standard generally faster for download; |delta|<50%% in "
               ">92%% of measurements; premium loss >10%% on some targets");

  const auto& selection = platform.select_differential("europe-west1");
  std::vector<std::size_t> by_class[3];
  for (const auto& chosen : selection.selected) {
    by_class[static_cast<int>(chosen.cls)].push_back(chosen.server_id);
  }
  const char* class_names[3] = {"premium_lower", "comparable",
                                "standard_lower"};

  const char* metrics[3] = {"download_mbps", "upload_mbps", "latency_ms"};
  const char* figures[3] = {"fig5a_download", "fig5b_upload", "fig5c_latency"};

  std::vector<double> all_download_deltas;
  for (int m = 0; m < 3; ++m) {
    std::printf("\n");
    for (int c = 0; c < 3; ++c) {
      const auto deltas = deltas_for(platform, metrics[m], by_class[c]);
      print_cdf(figures[m], class_names[c], deltas);
      if (m == 0) {
        all_download_deltas.insert(all_download_deltas.end(), deltas.begin(),
                                   deltas.end());
      }
    }
  }

  // Headline statistics.
  std::size_t std_faster = 0, within_half = 0;
  for (const double d : all_download_deltas) {
    if (d < 0.0) ++std_faster;
    if (std::abs(d) < 0.5) ++within_half;
  }
  const double n = static_cast<double>(all_download_deltas.size());
  std::printf("\nheadline stats (download):\n");
  std::printf("  standard faster in %.1f%% of measurements (paper: generally"
              " faster; >=87%% on 8 servers)\n",
              100.0 * std_faster / n);
  std::printf("  |delta| < 50%% in %.1f%% of measurements (paper: >92%%)\n",
              100.0 * within_half / n);

  // Per-server standard-faster shares + premium loss (the 8 lossy targets).
  std::printf("\nper-server detail:\n");
  text_table table({"Server", "Class", "std faster %", "premium loss avg %"});
  for (const auto& chosen : selection.selected) {
    const std::vector<std::size_t> one{chosen.server_id};
    const auto deltas = deltas_for(platform, "download_mbps", one);
    if (deltas.empty()) continue;
    std::size_t faster = 0;
    for (const double d : deltas) faster += d < 0 ? 1 : 0;

    tag_set tags = {{"campaign", "diff-premium"},
                    {"region", "europe-west1"},
                    {"tier", "premium"},
                    {"server", std::to_string(chosen.server_id)}};
    const speed_server& server = platform.registry().server(chosen.server_id);
    tags["network"] = std::to_string(server.network.value);
    tags["city"] = platform.net().geo->city(server.city).name;
    const ts_series* loss = platform.store().find("download_loss", tags);
    double avg_loss = 0.0;
    if (loss != nullptr && loss->size() > 0) {
      for (const ts_point& p : loss->points()) avg_loss += p.value;
      avg_loss /= static_cast<double>(loss->size());
    }
    table.add_row({server.name, to_string(chosen.cls),
                   format_double(100.0 * faster / deltas.size(), 1),
                   format_double(100.0 * avg_loss, 2)});
  }
  table.print(std::cout);

  std::size_t lossy_targets = 0;
  // Count servers whose premium loss average exceeds 10%.
  for (const auto& chosen : selection.selected) {
    tag_set tags = {{"campaign", "diff-premium"},
                    {"region", "europe-west1"},
                    {"tier", "premium"},
                    {"server", std::to_string(chosen.server_id)}};
    const speed_server& server = platform.registry().server(chosen.server_id);
    tags["network"] = std::to_string(server.network.value);
    tags["city"] = platform.net().geo->city(server.city).name;
    const ts_series* loss = platform.store().find("download_loss", tags);
    if (loss == nullptr || loss->size() == 0) continue;
    double avg = 0.0;
    for (const ts_point& p : loss->points()) avg += p.value;
    if (avg / static_cast<double>(loss->size()) > 0.10) ++lossy_targets;
  }
  std::printf("\nservers with premium avg loss >10%%: %zu (paper: 8)\n",
              lossy_targets);
  return 0;
}

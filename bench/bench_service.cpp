// Campaign service bench: what the daemon costs over batch mode.
//
// Two questions, answered with numbers in BENCH_service.json:
//
//   1. Submit-to-first-hour latency — how long after `submit` the first
//      simulated hour of a campaign commits. Cold = a fresh campaign
//      (world build + selection + deploy + one hour). Warm-resident = a
//      paused campaign whose session is still in memory (one hour, no
//      rebuild). Warm-checkpoint = a paused durable campaign that left
//      memory (rebuild + checkpoint resume + one hour). Warm-resident
//      must beat cold outright; both warm figures are reported.
//   2. Scheduling overhead — aggregate simulated hours/sec with 1, 4
//      and 8 concurrent campaigns time-sliced under the service, vs the
//      same campaign set run back-to-back in batch mode. The service
//      adds admission, registry persistence and session switching per
//      quantum; the gate (check_bench_service.py) requires concurrent
//      throughput >= 0.9x sequential, and the harvested CSVs must be
//      byte-identical to the batch twins (hard contract, not a budget).
//
// `--fast` shrinks the substrate and window for the CI smoke job.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "svc/service.hpp"
#include "util/strings.hpp"

namespace {

namespace fs = std::filesystem;

using namespace clasp;
using namespace clasp::bench;

platform_config bench_config(bool fast, const fs::path& dir) {
  platform_config cfg;
  if (fast) {
    cfg.internet.seed = 777;
    cfg.internet.regional_isp_count = 120;
    cfg.internet.hosting_count = 80;
    cfg.internet.business_count = 150;
    cfg.internet.education_count = 30;
    cfg.internet.large_isp_count = 20;
    cfg.internet.vantage_point_count = 120;
    cfg.servers.us_server_target = 120;
    cfg.servers.global_server_target = 600;
    cfg.topology_budgets = {{"us-west1", 40}};
  }
  cfg.campaign_workers = 1;  // one thread everywhere: timings comparable
  cfg.service.socket = (dir / "svc.sock").string();
  cfg.service.state_dir = (dir / "state").string();
  cfg.service.results_dir = (dir / "results").string();
  cfg.service.quantum_hours = 6;
  cfg.service.worker_budget = 8;
  cfg.service.max_admitted = 8;
  cfg.service.tenant_max_admitted = 8;
  cfg.service.max_resident = 8;
  return cfg;
}

svc::campaign_spec spec_of(std::uint64_t seed, int days, bool durable) {
  svc::campaign_spec spec;
  spec.days = days;
  spec.seed = seed;
  spec.durable = durable;
  return spec;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string download_csv(clasp_platform& platform) {
  std::ostringstream out;
  tag_filter filter;
  filter.required["campaign"] = "topology";
  filter.required["region"] = "us-west1";
  platform.store().export_csv(out, "download_mbps", filter);
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

fs::path fresh_dir(const std::string& leg) {
  const fs::path dir = fs::temp_directory_path() / ("clasp_bench_svc_" + leg);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }
  const int days = fast ? 2 : 3;
  const int window_hours = days * 24;
  constexpr int kPasses = 3;

  // ---- leg 1: submit-to-first-hour latency ----------------------------
  print_header("Campaign service — submit-to-first-hour latency",
               "cold builds a world; a warm resident session just runs");
  double cold_s = 0.0, warm_resident_s = 0.0, warm_checkpoint_s = 0.0;
  {
    const fs::path dir = fresh_dir("latency");
    platform_config cfg = bench_config(fast, dir);
    cfg.service.quantum_hours = 1;  // first tick = exactly the first hour
    svc::campaign_service service(cfg);

    // Cold: fresh durable campaign, nothing resident.
    const std::uint64_t durable_id =
        service.submit("bench", spec_of(4242, days, true));
    auto t0 = std::chrono::steady_clock::now();
    service.tick();
    cold_s = seconds_since(t0);

    // Warm-checkpoint: pause evicts the durable session (checkpointing
    // it); resuming rebuilds the platform and resumes mid-window.
    service.pause_campaign(durable_id);
    service.resume_campaign(durable_id);
    t0 = std::chrono::steady_clock::now();
    service.tick();
    warm_checkpoint_s = seconds_since(t0);

    // Warm-resident: a paused non-durable session stays pinned in
    // memory, so its next hour costs no rebuild at all.
    const std::uint64_t pinned_id =
        service.submit("bench", spec_of(4243, days, false));
    while (service.status_of(pinned_id).state != "running") service.tick();
    service.pause_campaign(pinned_id);
    service.resume_campaign(pinned_id);
    t0 = std::chrono::steady_clock::now();
    service.tick();
    warm_resident_s = seconds_since(t0);
    fs::remove_all(dir);
  }
  std::printf("cold %.4fs | warm resident %.4fs | warm checkpoint %.4fs\n",
              cold_s, warm_resident_s, warm_checkpoint_s);

  // ---- leg 2: aggregate throughput vs sequential batch ----------------
  print_header("Campaign service — concurrent throughput",
               "time-slicing N tenants must cost <10% over batch");
  constexpr std::size_t kMaxConcurrent = 8;
  std::map<std::uint64_t, std::string> batch_csv;
  const fs::path thr_dir = fresh_dir("throughput");
  const platform_config base = bench_config(fast, thr_dir);

  struct throughput_run {
    std::size_t concurrent{0};
    double service_seconds{0.0};
    double sequential_seconds{0.0};
    double hours_per_sec{0.0};
    double ratio{0.0};
    std::uint64_t preemptions{0};
    bool output_identical{true};
  };
  std::vector<throughput_run> runs;
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}, kMaxConcurrent}) {
    throughput_run run;
    run.concurrent = n;
    // The batch and service legs for a given N run back-to-back inside
    // each pass, and the gate ratio is the best pass (like bench_dist's
    // best-of-two): both legs see the same CPU-frequency window, so a
    // slow scheduling quantum degrades both sides instead of skewing
    // the ratio. The batch leg writes its CSVs to disk inside the timed
    // region because the service leg harvests results files inside its
    // own — both sides pay for the export.
    for (int pass = 0; pass < kPasses; ++pass) {
      double batch_s = 0.0;
      {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < n; ++i) {
          const svc::campaign_spec spec = spec_of(1000 + i, days, false);
          clasp_platform platform(svc::resolve_platform_config(spec, base));
          campaign_runner& campaign = platform.start_topology_campaign(
              "us-west1", svc::spec_window(spec));
          campaign.run();
          const std::string csv = download_csv(platform);
          std::ofstream(thr_dir / ("batch-" + std::to_string(spec.seed) +
                                   ".csv"),
                        std::ios::binary)
              << csv;
          batch_csv[spec.seed] = csv;
        }
        batch_s = seconds_since(t0);
      }

      const fs::path dir = fresh_dir("thr_" + std::to_string(n));
      svc::campaign_service service(bench_config(fast, dir));
      std::vector<std::uint64_t> ids;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < n; ++i) {
        ids.push_back(service.submit("tenant" + std::to_string(i % 2),
                                     spec_of(1000 + i, days, false)));
      }
      service.run_to_idle();
      const double service_s = seconds_since(t0);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t seed = 1000 + i;
        if (read_file(service.results_path(ids[i])) != batch_csv[seed]) {
          run.output_identical = false;
        }
      }
      run.preemptions = service.status_summary().preemptions;
      fs::remove_all(dir);

      const double ratio = batch_s / service_s;
      if (pass == 0 || ratio > run.ratio) {
        run.ratio = ratio;
        run.service_seconds = service_s;
        run.sequential_seconds = batch_s;
      }
    }
    run.hours_per_sec =
        static_cast<double>(n * window_hours) / run.service_seconds;
    runs.push_back(run);
  }
  fs::remove_all(thr_dir);

  text_table table({"concurrent", "service s", "batch s", "hours/s",
                    "ratio", "preemptions", "identical"});
  for (const throughput_run& r : runs) {
    table.add_row({std::to_string(r.concurrent),
                   format_double(r.service_seconds, 3),
                   format_double(r.sequential_seconds, 3),
                   format_double(r.hours_per_sec, 1),
                   format_double(r.ratio, 3), std::to_string(r.preemptions),
                   r.output_identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::ofstream out("BENCH_service.json");
  out << "{\n  \"bench\": \"service\",\n"
      << "  \"fast\": " << (fast ? "true" : "false") << ",\n"
      << "  \"window_hours\": " << window_hours << ",\n"
      << "  \"latency\": {\n"
      << "    \"cold_first_hour_seconds\": " << format_double(cold_s, 5)
      << ",\n    \"warm_resident_first_hour_seconds\": "
      << format_double(warm_resident_s, 5)
      << ",\n    \"warm_checkpoint_first_hour_seconds\": "
      << format_double(warm_checkpoint_s, 5) << "\n  },\n"
      << "  \"throughput\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const throughput_run& r = runs[i];
    out << "    {\"concurrent\": " << r.concurrent
        << ", \"service_seconds\": " << format_double(r.service_seconds, 4)
        << ", \"sequential_seconds\": "
        << format_double(r.sequential_seconds, 4)
        << ", \"hours_per_sec\": " << format_double(r.hours_per_sec, 2)
        << ", \"ratio\": " << format_double(r.ratio, 4)
        << ", \"preemptions\": " << r.preemptions
        << ", \"output_identical\": "
        << (r.output_identical ? "true" : "false") << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote BENCH_service.json\n");
  return 0;
}

// Fig. 8 / Appendix B: congested vs non-congested servers per region,
// broken down by the business type of the hosting network (ipinfo-style
// classification: ISP / Hosting / Business / Education / Unknown).
//
// Paper: most test servers sit in ISP networks; 30-77% of ISP servers
// selected with the topology-based method showed signs of congestion
// (>10% of days with at least one event); the two tiers look similar for
// differential servers.
#include "bench_support.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;

struct category_counts {
  std::size_t total[5] = {0, 0, 0, 0, 0};
  std::size_t congested[5] = {0, 0, 0, 0, 0};
};

category_counts tally(const clasp_platform& platform,
                      const std::string& campaign, const std::string& region,
                      const std::string& tier) {
  category_counts counts;
  const auto data =
      platform.download_series(campaign, region, "download_mbps", tier);
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(data.series[i]->tag("server").value_or("0")));
    const speed_server& server = platform.registry().server(sid);
    const business_type type = platform.net().ipinfo.type_of(server.network);
    const auto summary = summarize_server(*data.series[i], data.tz[i], 0.5);
    counts.total[static_cast<int>(type)] += 1;
    if (summary.congested_server) {
      counts.congested[static_cast<int>(type)] += 1;
    }
  }
  return counts;
}

void print_counts(const std::string& label, const category_counts& counts) {
  const business_type types[5] = {business_type::isp, business_type::hosting,
                                  business_type::business,
                                  business_type::education,
                                  business_type::unknown};
  std::printf("%-28s", label.c_str());
  for (const business_type t : types) {
    const int i = static_cast<int>(t);
    std::printf("  %s %zu/%zu", to_string(t).c_str(), counts.congested[i],
                counts.total[i]);
  }
  if (counts.total[0] > 0) {
    std::printf("  (ISP congested: %.0f%%)",
                100.0 * counts.congested[0] / counts.total[0]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();
  run_topology_campaigns(platform, table1_regions());
  run_differential_campaign(platform, "europe-west1");

  print_header("Fig. 8 — Congested/non-congested servers by business type",
               "most servers in ISP networks; 30-77%% of ISP servers "
               "congested (topology-based); tiers similar (differential)");

  std::printf("\ntopology-based (counts are congested/total):\n");
  for (const std::string& region : table1_regions()) {
    print_counts(region, tally(platform, "topology", region, ""));
  }

  std::printf("\ndifferential-based, europe-west1:\n");
  print_counts("europe-west1 (premium)",
               tally(platform, "diff-premium", "europe-west1", "premium"));
  print_counts("europe-west1 (standard)",
               tally(platform, "diff-standard", "europe-west1", "standard"));
  return 0;
}

// Distributed replay bench: what sharding one campaign across worker
// processes costs, and what a failover costs.
//
// Three questions, each answered with numbers in BENCH_dist.json:
//
//   1. Identity — the distributed output (TSDB CSV, billing, test
//      counts) must hash identically to the single-process run at every
//      shard count, with and without a mid-run worker kill. This is the
//      contract everything else leans on; the bench hard-fails on a
//      mismatch.
//   2. Merge overhead — end-to-end wall-clock at shards {1, 2, 4} vs
//      the single-process baseline. The sim compresses a 3600-second
//      hour into microseconds, so per-barrier IPC is magnified exactly
//      like checkpoint I/O in bench_robustness; the deployed figure
//      (coordinator work per barrier over the real-time hour it covers)
//      is what the <10% budget means for a real campaign, and the raw
//      sim ratio is reported alongside for full-scale runs.
//   3. Failover recovery — a worker SIGKILLed mid-window must cost the
//      coordinator exactly the in-flight barrier hour (recovery_hours),
//      never a checkpoint interval.
//
// `--fast` shrinks the substrate and window for the CI chaos job.
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "dist/coordinator.hpp"
#include "util/binio.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;
using namespace clasp::bench;

platform_config bench_config(bool fast) {
  platform_config cfg;
  if (fast) {
    cfg.internet.seed = 777;
    cfg.internet.regional_isp_count = 120;
    cfg.internet.hosting_count = 80;
    cfg.internet.business_count = 150;
    cfg.internet.education_count = 30;
    cfg.internet.large_isp_count = 20;
    cfg.internet.vantage_point_count = 120;
    cfg.servers.us_server_target = 120;
    cfg.servers.global_server_target = 600;
    cfg.topology_budgets = {{"us-west1", 40}};
    // The fast fleet is ~3 VMs; double it so four shards each own a
    // real slot range.
    cfg.fleet_scale = 2;
  } else {
    cfg.internet.seed = 42;
  }
  cfg.campaign_faults = fault_config::preset("low");
  return cfg;
}

const char* kMetrics[] = {"download_mbps", "upload_mbps", "latency_ms",
                          "download_loss", "upload_loss", "gt_episode",
                          "test_status"};

// One hash over everything the campaign produced: every TSDB point and
// tag via the CSV export, plus billing totals and test counts.
std::uint32_t output_hash(clasp_platform& platform, campaign_runner& c) {
  std::ostringstream all;
  for (const char* metric : kMetrics) platform.store().export_csv(all, metric);
  const cost_report costs = platform.cloud().costs();
  all << costs.vm_usd << '|' << costs.egress_usd << '|' << costs.storage_usd
      << '|' << c.tests_run() << '|' << c.tests_missed();
  return crc32(all.str());
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct dist_run {
  std::size_t shards{0};
  double seconds{0.0};
  double merge_overhead_pct{0.0};     // sim wall-clock, time-compressed
  double deployed_overhead_pct{0.0};  // coordinator cost vs real-time hours
  bool output_identical{false};
  dist::dist_report report;
};

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
  }

  const hour_stamp t0 = hour_stamp::from_civil({2020, 5, 1}, 0);
  const hour_range window{t0, t0 + (fast ? 48 : 120)};

  print_header("Distributed replay — merge overhead & identity",
               "sharded output must hash identically and cost little");

  // Single-process baseline: best of two passes (the distributed runs
  // get the same treatment, so scheduler noise cancels out of the
  // overhead ratio instead of inflating it).
  double baseline_seconds = 0.0;
  std::uint32_t baseline_hash = 0;
  std::size_t vm_count = 0;
  for (int pass = 0; pass < 2; ++pass) {
    clasp_platform platform(bench_config(fast));
    campaign_runner& campaign =
        platform.start_topology_campaign("us-west1", window);
    const auto start = std::chrono::steady_clock::now();
    campaign.run();
    const double s = seconds_since(start);
    if (pass == 0 || s < baseline_seconds) baseline_seconds = s;
    baseline_hash = output_hash(platform, campaign);
    vm_count = campaign.vm_count();
  }
  std::fprintf(stderr, "[bench] baseline: %zu VMs, %.3fs, hash %08x\n",
               vm_count, baseline_seconds, baseline_hash);

  std::vector<dist_run> runs;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    dist_run run;
    run.shards = shards;
    for (int pass = 0; pass < 2; ++pass) {
      clasp_platform platform(bench_config(fast));
      campaign_runner& campaign =
          platform.start_topology_campaign("us-west1", window);
      dist::dist_config dc;
      dc.shards = shards;
      dist::shard_coordinator coordinator(campaign, dc);
      const auto start = std::chrono::steady_clock::now();
      coordinator.run();
      const double s = seconds_since(start);
      if (pass == 0 || s < run.seconds) run.seconds = s;
      run.output_identical = output_hash(platform, campaign) == baseline_hash;
      run.report = coordinator.report();
    }
    run.merge_overhead_pct =
        100.0 * (run.seconds - baseline_seconds) / baseline_seconds;
    // Coordinator-side cost per barrier, over the 3600 real-time
    // seconds one deployed barrier hour spans.
    const double extra = std::max(0.0, run.seconds - baseline_seconds);
    run.deployed_overhead_pct =
        100.0 * (extra / static_cast<double>(window.count())) / 3600.0;
    runs.push_back(run);
  }

  text_table table({"shards", "seconds", "sim overhead", "deployed",
                    "identical", "heartbeats"});
  table.add_row({"1 (in-proc)", format_double(baseline_seconds, 3), "-", "-",
                 "baseline", "-"});
  for (const dist_run& r : runs) {
    table.add_row({std::to_string(r.shards), format_double(r.seconds, 3),
                   format_double(r.merge_overhead_pct, 1) + "%",
                   format_double(r.deployed_overhead_pct, 6) + "%",
                   r.output_identical ? "yes" : "NO",
                   std::to_string(r.report.heartbeats)});
  }
  table.print(std::cout);

  print_header("Distributed replay — failover recovery",
               "a SIGKILLed worker costs one barrier hour, not an interval");

  // Kill one worker for real halfway through the window; recovery must
  // be the in-flight barrier only, and the output must not move.
  const unsigned checkpoint_every_hours = 24;
  dist_run failover_run;
  failover_run.shards = 2;
  {
    clasp_platform platform(bench_config(fast));
    campaign_runner& campaign =
        platform.start_topology_campaign("us-west1", window);
    dist::dist_config dc;
    dc.shards = 2;
    const std::int64_t kill_hour =
        (window.begin_at + window.count() / 2).hours_since_epoch();
    bool killed = false;
    dc.on_barrier_for_testing = [&killed, kill_hour](
                                    dist::shard_coordinator& co,
                                    hour_stamp at) {
      if (!killed && at.hours_since_epoch() == kill_hour) {
        killed = true;
        co.kill_worker(0);
      }
    };
    dist::shard_coordinator coordinator(campaign, dc);
    const auto start = std::chrono::steady_clock::now();
    coordinator.run();
    failover_run.seconds = seconds_since(start);
    failover_run.output_identical =
        output_hash(platform, campaign) == baseline_hash;
    failover_run.report = coordinator.report();
  }
  std::printf("failover leg: %.3fs, %zu failover(s), %zu respawn(s), "
              "recovery %zu hour(s) vs checkpoint interval %u; output "
              "identical: %s\n",
              failover_run.seconds, failover_run.report.failovers,
              failover_run.report.respawns, failover_run.report.recovery_hours,
              checkpoint_every_hours,
              failover_run.output_identical ? "yes" : "NO");

  std::ofstream out("BENCH_dist.json");
  out << "{\n  \"bench\": \"dist\",\n"
      << "  \"fast\": " << (fast ? "true" : "false") << ",\n"
      << "  \"window_hours\": " << window.count() << ",\n"
      << "  \"vm_count\": " << vm_count << ",\n"
      << "  \"baseline_seconds\": " << format_double(baseline_seconds, 4)
      << ",\n  \"output_crc32\": " << baseline_hash << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const dist_run& r = runs[i];
    out << "    {\"shards\": " << r.shards
        << ", \"seconds\": " << format_double(r.seconds, 4)
        << ", \"merge_overhead_pct\": "
        << format_double(r.merge_overhead_pct, 2)
        << ", \"deployed_overhead_pct\": "
        << format_double(r.deployed_overhead_pct, 6)
        << ", \"output_identical\": "
        << (r.output_identical ? "true" : "false")
        << ", \"groups_merged\": " << r.report.groups_merged
        << ", \"records_merged\": " << r.report.records_merged
        << ", \"heartbeats\": " << r.report.heartbeats << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"failover\": {\"shards\": " << failover_run.shards
      << ", \"seconds\": " << format_double(failover_run.seconds, 4)
      << ", \"failovers\": " << failover_run.report.failovers
      << ", \"respawns\": " << failover_run.report.respawns
      << ", \"failover_recovery_hours\": "
      << failover_run.report.recovery_hours
      << ", \"checkpoint_every_hours\": " << checkpoint_every_hours
      << ", \"output_identical\": "
      << (failover_run.output_identical ? "true" : "false") << "}\n}\n";
  out.close();

  std::printf("\nwrote BENCH_dist.json\n");

  bool ok = true;
  for (const dist_run& r : runs) {
    if (!r.output_identical) {
      std::fprintf(stderr, "[bench] WARNING: %zu-shard output diverged from "
                   "the single-process run\n", r.shards);
      ok = false;
    }
  }
  if (!failover_run.output_identical) {
    std::fprintf(stderr,
                 "[bench] WARNING: output moved after a worker SIGKILL\n");
    ok = false;
  }
  if (failover_run.report.failovers == 0) {
    std::fprintf(stderr, "[bench] WARNING: the failover leg never failed "
                 "over\n");
    ok = false;
  }
  if (failover_run.report.recovery_hours > checkpoint_every_hours) {
    std::fprintf(stderr, "[bench] WARNING: recovery took %zu hours, more "
                 "than the %u-hour checkpoint interval\n",
                 failover_run.report.recovery_hours, checkpoint_every_hours);
    ok = false;
  }
  return ok ? 0 : 1;
}

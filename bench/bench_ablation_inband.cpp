// Ablation (§5 future work): in-band probing vs full speed tests.
//
// Full tests move >100 MB each; egress charges limited the paper's fleet
// and cadence. An in-band probe moves ~0.3 MB. This bench compares
// congestion-detection quality (against planted ground truth) of three
// designs at wildly different egress budgets:
//   A. full speed tests, hourly           (the paper's design)
//   B. full speed tests, every 6 hours    (what a 6x smaller budget buys)
//   C. in-band probes, hourly             (~400x cheaper than A)
// Detection runs the same V_H > 0.5 rule on each measurement series.
#include "bench_support.hpp"
#include "clasp/inband.hpp"
#include "util/strings.hpp"

namespace {

using namespace clasp;

struct totals {
  std::size_t tp{0}, fp{0}, fn{0}, tn{0};
  double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
};

void score(const ts_series& measured, const ts_series& gt,
           timezone_offset tz, totals& t) {
  std::unordered_map<std::int64_t, bool> truth;
  for (const ts_point& p : gt.points()) {
    truth[p.at.hours_since_epoch()] = p.value > 0.5;
  }
  for (const hour_label& l : intraday_labels(measured, tz, 0.5, 4)) {
    const auto it = truth.find(l.at.hours_since_epoch());
    if (it == truth.end()) continue;
    if (l.congested && it->second) ++t.tp;
    else if (l.congested && !it->second) ++t.fp;
    else if (!l.congested && it->second) ++t.fn;
    else ++t.tn;
  }
}

}  // namespace

int main() {
  using namespace clasp;
  using namespace clasp::bench;

  clasp_platform platform = make_platform();
  // One month keeps this bench quick; the comparison is per-hour anyway.
  const hour_range month{hour_stamp::from_civil({2020, 5, 1}, 0),
                         hour_stamp::from_civil({2020, 6, 1}, 0)};
  campaign_runner& campaign =
      platform.start_topology_campaign("us-west1", month);
  campaign.run();

  print_header("Ablation — in-band probes vs full tests at equal budget",
               "§5: in-band approaches reduce test duration and egress "
               "cost");

  const auto data = platform.download_series("topology", "us-west1");

  // Build the three measurement series per server and score them.
  totals full_hourly, full_6h, inband_hourly;
  double inband_mb = 0.0;
  rng r(2024);
  const gcp_cloud::vm_id probe_vm =
      platform.cloud().create_vm("us-west1", service_tier::premium);
  const endpoint vm_ep = platform.cloud().vm_endpoint(probe_vm);
  // Short default trains are too noisy for the V_H rule (the estimate's
  // dispersion inflates the per-day max); 256-packet trains tame it while
  // staying ~50x cheaper than a full test.
  inband_config probe_cfg;
  probe_cfg.train_length = 256;
  probe_cfg.trains = 5;

  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const ts_series* gt =
        platform.store().find("gt_episode", data.series[i]->tags());
    if (gt == nullptr) continue;

    // A. the campaign's own hourly series.
    score(*data.series[i], *gt, data.tz[i], full_hourly);

    // B. the same series thinned to every 6th hour.
    ts_series thinned("download_mbps", {});
    const auto& points = data.series[i]->points();
    for (std::size_t k = 0; k < points.size(); k += 6) {
      thinned.append(points[k].at, points[k].value);
    }
    score(thinned, *gt, data.tz[i], full_6h);

    // C. hourly in-band probes of the same download path.
    const std::size_t sid = static_cast<std::size_t>(
        std::stoul(data.series[i]->tag("server").value_or("0")));
    const endpoint server_ep = platform.planner().endpoint_of_host(
        platform.registry().server(sid).host);
    const route_path path =
        platform.planner().to_cloud(server_ep, vm_ep, service_tier::premium);
    ts_series probed("inband_mbps", {});
    for (const ts_point& p : points) {
      const inband_result probe =
          run_inband_probe(platform.view(), path, p.at, probe_cfg, r);
      probed.append(p.at, probe.available_estimate.value);
      inband_mb += probe.volume.value;
    }
    score(probed, *gt, data.tz[i], inband_hourly);
  }

  // Budgets: full tests bill the upload phase; the download is ingress.
  const double full_mb_per_test = 187.5 + 750.0;  // up + down traffic moved
  const double n_tests = static_cast<double>(campaign.tests_run());

  text_table table({"design", "traffic (GB)", "precision", "recall"});
  table.add_row({"full tests, hourly",
                 format_double(n_tests * full_mb_per_test / 1024.0, 0),
                 format_double(full_hourly.precision(), 3),
                 format_double(full_hourly.recall(), 3)});
  table.add_row({"full tests, 6-hourly",
                 format_double(n_tests / 6.0 * full_mb_per_test / 1024.0, 0),
                 format_double(full_6h.precision(), 3),
                 format_double(full_6h.recall(), 3)});
  table.add_row({"in-band, hourly",
                 format_double(inband_mb / 1024.0, 0),
                 format_double(inband_hourly.precision(), 3),
                 format_double(inband_hourly.recall(), 3)});
  table.print(std::cout);

  std::printf("\ninterpretation: in-band probing is ~500x cheaper but "
              "recovers only part of the detection quality: it sees the "
              "download path's available bandwidth, so it catches deep "
              "forward-path episodes while missing shallow ones (a full "
              "TCP transfer amplifies moderate loss into a large goodput "
              "collapse) and all upload-side episodes. The paper's "
              "future-work proposal buys cadence, not equivalence.\n");
  return 0;
}
